// Copyright 2026 The updb Authors.
// Structured per-request tracing: a bounded in-memory recorder of span
// ("ph":"X" complete) and instant events, exported as Chrome trace-event
// JSON — load the file at https://ui.perfetto.dev (or chrome://tracing)
// to see the submit -> queue wait -> batch -> request -> IDCA iteration
// span tree.
//
// Cost contract: tracing is opt-in via a TraceRecorder* threaded through
// the component options (QueryServiceOptions/StoreOptions/IdcaConfig).
// When the pointer is null — the default — every instrumentation site
// reduces to one pointer test (TraceSpan's constructor and destructor are
// inline no-ops then), which is what the digest oracles and
// bench_obs_overhead hold the layer to: tracing on vs. off must produce
// bit-identical response payloads, and the enabled overhead stays within
// the bench's stated bound.
//
// Memory contract: the event buffer is bounded (max_events at
// construction); past the cap events are counted as dropped, never
// appended — a trace can't grow without bound under sustained traffic.
//
// Timestamps come from one steady-clock epoch per recorder, so spans from
// all threads share a timeline; thread ids are small dense integers
// assigned on each thread's first recorded event.

#ifndef UPDB_OBS_TRACE_H_
#define UPDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace updb {
namespace obs {

/// One "key": value annotation of an event. Keys must be string literals
/// (the recorder stores the pointer); values are unsigned integers — rich
/// payloads do not belong on the hot path.
struct TraceArg {
  const char* key = nullptr;
  uint64_t value = 0;
};

/// One recorded event. dur_ns == kInstant marks an instant event.
struct TraceEvent {
  static constexpr uint64_t kInstant = ~uint64_t{0};

  const char* name = "";  // string literal
  const char* category = "";  // string literal
  uint32_t tid = 0;
  uint64_t ts_ns = 0;   // steady-clock ns since the recorder's epoch
  uint64_t dur_ns = 0;  // span duration, or kInstant
  uint32_t num_args = 0;
  TraceArg args[4];
};

/// Bounded thread-safe trace-event sink. Recording takes a short mutex
/// (one vector push); the disabled path never reaches the recorder at all
/// (callers hold a null pointer).
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_events = 1 << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Nanoseconds since this recorder's epoch (steady clock).
  uint64_t NowNs() const;

  /// Records a complete ("ph":"X") event with an explicit interval —
  /// TraceSpan uses this; call it directly to backdate a span (e.g. queue
  /// wait reconstructed from the submit timestamp).
  void RecordSpan(const char* name, const char* category, uint64_t ts_ns,
                  uint64_t dur_ns, const TraceArg* args = nullptr,
                  uint32_t num_args = 0);

  /// Records a complete event that *ends* at `end_ns` and began `dur_ns`
  /// earlier, clamping start and duration together at the recorder's
  /// epoch: a backdated span (e.g. a queue wait reconstructed from an
  /// elapsed-time measurement taken against a different clock) can
  /// neither precede process start on the trace timeline nor keep a
  /// duration longer than the clamped interval it claims to cover.
  void RecordBackdatedSpan(const char* name, const char* category,
                           uint64_t end_ns, uint64_t dur_ns,
                           const TraceArg* args = nullptr,
                           uint32_t num_args = 0);

  /// Records an instant ("ph":"i") event at NowNs().
  void RecordInstant(const char* name, const char* category,
                     const TraceArg* args = nullptr, uint32_t num_args = 0);

  /// Copy of everything recorded so far (tests, exporters).
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  /// Events discarded because the buffer was full.
  uint64_t dropped() const;
  /// The buffer bound fixed at construction.
  size_t max_events() const { return max_events_; }

  /// Mirrors drop visibility into `registry`: updb_trace_buffer_capacity
  /// (the fixed bound) and updb_trace_dropped_events (kept current on
  /// every drop), so a scrape shows a truncated trace without parsing the
  /// export. Call once, before concurrent recording starts.
  void RegisterGauges(MetricsRegistry* registry);

  /// Chrome trace-event JSON. The top-level object carries an "updbTrace"
  /// header ({"maxEvents", "recordedEvents", "droppedEvents"}) alongside
  /// "traceEvents", so a truncated export is detectable from the file
  /// alone; viewers ignore the extra key. ts/dur in microseconds, pid
  /// fixed at 1.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; Unavailable when it cannot open.
  Status WriteChromeJson(const std::string& path) const;

 private:
  void Record(const TraceEvent& event);
  static uint32_t ThreadId();

  const size_t max_events_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
  Gauge* dropped_gauge_ = nullptr;  // guarded by mu_; null until registered
};

/// RAII span: opens at construction, records [ctor, dtor) as one complete
/// event at destruction. With a null recorder every member is an inline
/// no-op — instrumentation sites pay one branch.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* category)
      : recorder_(recorder), name_(name), category_(category) {
    if (recorder_ != nullptr) start_ns_ = recorder_->NowNs();
  }

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSpan(name_, category_, start_ns_,
                            recorder_->NowNs() - start_ns_, args_, num_args_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Annotates the span (up to 4 args; extras are dropped). `key` must be
  /// a string literal.
  void AddArg(const char* key, uint64_t value) {
    if (recorder_ != nullptr && num_args_ < 4) {
      args_[num_args_++] = TraceArg{key, value};
    }
  }

 private:
  TraceRecorder* const recorder_;
  const char* const name_;
  const char* const category_;
  uint64_t start_ns_ = 0;
  uint32_t num_args_ = 0;
  TraceArg args_[4];
};

}  // namespace obs
}  // namespace updb

#endif  // UPDB_OBS_TRACE_H_
