#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace updb {
namespace obs {

namespace {

/// Appends printf-formatted text to `out` (metric values are short).
template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

/// Splits "name{label=...}" into the bare name and the label suffix (empty
/// when the series carries no labels).
void SplitSeries(const std::string& series, std::string* name,
                 std::string* labels) {
  const size_t brace = series.find('{');
  if (brace == std::string::npos) {
    *name = series;
    labels->clear();
  } else {
    *name = series.substr(0, brace);
    *labels = series.substr(brace);
  }
}

/// "name{le="0.1"}" — merges a histogram bucket label into an existing
/// label set when the series already has one.
std::string BucketSeries(const std::string& name, const std::string& labels,
                         const std::string& le) {
  if (labels.empty()) return name + "_bucket{le=\"" + le + "\"}";
  std::string merged = labels;
  merged.insert(merged.size() - 1, ",le=\"" + le + "\"");
  return name + "_bucket" + merged;
}

/// Escapes HELP text per the exposition format: only backslash and
/// newline (double quotes are legal in HELP, unlike in label values).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string LabeledSeries(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  if (labels.size() == 0) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

size_t Counter::StripeIndex() {
  // One atomic fetch_add per thread lifetime; the stripe choice itself
  // never changes afterwards.
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

namespace {

/// Degenerate layouts collapse to a sane default rather than asserting:
/// the histogram is telemetry, never control flow.
HistogramOptions SanitizeHistogramOptions(HistogramOptions o) {
  if (o.buckets < 1) o.buckets = 1;
  if (o.growth <= 1.0) o.growth = 2.0;
  if (o.min <= 0.0) o.min = 1e-9;
  return o;
}

}  // namespace

Histogram::Histogram(HistogramOptions options)
    : options_(SanitizeHistogramOptions(options)) {
  upper_edges_.reserve(options_.buckets - 1);
  double edge = options_.min;
  for (size_t i = 0; i + 1 < options_.buckets; ++i) {
    upper_edges_.push_back(edge);
    edge *= options_.growth;
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(options_.buckets);
  for (size_t i = 0; i < options_.buckets; ++i) counts_[i].store(0);
}

void Histogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(upper_edges_.begin(), upper_edges_.end(), value) -
      upper_edges_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First recorder seeds both extremes; racers fall through to the CAS
    // loops below, which only ever tighten.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo && !min_.compare_exchange_weak(
                           lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi && !max_.compare_exchange_weak(
                           hi, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.counts.reserve(options_.buckets);
  for (size_t i = 0; i < options_.buckets; ++i) {
    s.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (any_.load(std::memory_order_relaxed)) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  s.upper_edges = upper_edges_;
  s.upper_edges.push_back(std::numeric_limits<double>::infinity());
  return s;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank walk over the cumulative counts.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Interpolate within bucket i between its lower and upper edge; the
    // open-ended extremes fall back to the exactly-tracked min/max.
    const double lo = i == 0 ? min : upper_edges[i - 1];
    const double hi =
        i + 1 == counts.size() ? max : std::min(upper_edges[i], max);
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(counts[i]);
    const double v = lo + (hi - lo) * frac;
    return std::min(std::max(v, min), max);
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::Counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, e] : entries_) {
    if (n == name && e->kind == Kind::kCounter) return e->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCounter;
  entry->help = help;
  entry->counter = std::make_unique<obs::Counter>();
  obs::Counter* out = entry->counter.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::Gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, e] : entries_) {
    if (n == name && e->kind == Kind::kGauge) return e->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kGauge;
  entry->help = help;
  entry->gauge = std::make_unique<obs::Gauge>();
  obs::Gauge* out = entry->gauge.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::Histogram(const std::string& name,
                                      const std::string& help,
                                      HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, e] : entries_) {
    if (n == name && e->kind == Kind::kHistogram) return e->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kHistogram;
  entry->help = help;
  entry->histogram = std::make_unique<obs::Histogram>(options);
  obs::Histogram* out = entry->histogram.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

std::vector<std::pair<std::string, const MetricsRegistry::Entry*>>
MetricsRegistry::SortedEntries() const {
  std::vector<std::pair<std::string, const Entry*>> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    sorted.emplace_back(name, entry.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : SortedEntries()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    switch (entry->kind) {
      case Kind::kCounter:
        Appendf(out, "%llu",
                static_cast<unsigned long long>(entry->counter->Value()));
        break;
      case Kind::kGauge:
        Appendf(out, "%lld", static_cast<long long>(entry->gauge->Value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = entry->histogram->Snapshot();
        Appendf(out,
                "{\"count\": %llu, \"sum\": %.6g, \"mean\": %.6g, "
                "\"min\": %.6g, \"max\": %.6g, \"p50\": %.6g, "
                "\"p95\": %.6g, \"p99\": %.6g}",
                static_cast<unsigned long long>(s.count), s.sum, s.Mean(),
                s.min, s.max, s.Quantile(0.50), s.Quantile(0.95),
                s.Quantile(0.99));
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group by bare metric name first: labeled series of one family
  // ("foo{a=..}", "foo{b=..}") must share a single # HELP/# TYPE pair —
  // repeating them per series is a spec violation scrapers reject.
  std::vector<std::pair<std::string, const Entry*>> sorted = SortedEntries();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     std::string an, al, bn, bl;
                     SplitSeries(a.first, &an, &al);
                     SplitSeries(b.first, &bn, &bl);
                     return an != bn ? an < bn : al < bl;
                   });
  std::string out;
  std::string last_family;
  for (const auto& [series, entry] : sorted) {
    std::string name, labels;
    SplitSeries(series, &name, &labels);
    if (name != last_family) {
      last_family = name;
      out += "# HELP " + name + " " + EscapeHelp(entry->help) + "\n";
      switch (entry->kind) {
        case Kind::kCounter:
          out += "# TYPE " + name + " counter\n";
          break;
        case Kind::kGauge:
          out += "# TYPE " + name + " gauge\n";
          break;
        case Kind::kHistogram:
          out += "# TYPE " + name + " histogram\n";
          break;
      }
    }
    switch (entry->kind) {
      case Kind::kCounter:
        Appendf(out, "%s %llu\n", series.c_str(),
                static_cast<unsigned long long>(entry->counter->Value()));
        break;
      case Kind::kGauge:
        Appendf(out, "%s %lld\n", series.c_str(),
                static_cast<long long>(entry->gauge->Value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = entry->histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.counts.size(); ++i) {
          cumulative += s.counts[i];
          char le[48];
          if (i + 1 == s.counts.size()) {
            std::snprintf(le, sizeof(le), "+Inf");
          } else {
            std::snprintf(le, sizeof(le), "%.6g", s.upper_edges[i]);
          }
          Appendf(out, "%s %llu\n", BucketSeries(name, labels, le).c_str(),
                  static_cast<unsigned long long>(cumulative));
        }
        Appendf(out, "%s_sum%s %.6g\n", name.c_str(), labels.c_str(), s.sum);
        Appendf(out, "%s_count%s %llu\n", name.c_str(), labels.c_str(),
                static_cast<unsigned long long>(s.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace updb
