// Copyright 2026 The updb Authors.
// Versioned full-response cache of the serving layer: QueryService keeps
// completed responses keyed by (canonical serialized request,
// snapshot_version) so a repeated request against the same published
// version bypasses execution entirely and returns a byte-identical
// payload (the determinism contract of service/request.h makes the
// payload a pure function of exactly that key; the cached≡recomputed
// digest oracles in service_test, updb_cli and bench_response_cache hold
// the cache to it).
//
// Invalidation is by version, and free: a publish stamps a new
// snapshot_version, lookups are keyed by the version current at
// submission, so a stale payload is unreachable the instant a new version
// is published — no eviction scan, no generation counter.
//
// Memory bound: `capacity` entries total, LRU per stripe. The key space
// is striped over independent mutexes so concurrent Submit threads and
// the dispatcher's insert loop do not serialize on one lock; no lock is
// ever held across request execution.

#ifndef UPDB_CACHE_RESPONSE_CACHE_H_
#define UPDB_CACHE_RESPONSE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/request.h"

namespace updb {
namespace cache {

/// Striped LRU response cache. Thread-safe.
class ResponseCache {
 public:
  /// `capacity` bounds the total entry count (must be >= 1; it is split
  /// evenly over the stripes, so the effective bound is capacity rounded
  /// down to a multiple of the stripe count). Series register in
  /// `registry`; nullptr creates a private registry.
  explicit ResponseCache(size_t capacity,
                         obs::MetricsRegistry* registry = nullptr);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// On a hit, copies the cached response into `out` (caller re-stamps the
  /// ticket id) and refreshes its LRU position.
  bool Lookup(const std::string& request_key, uint64_t snapshot_version,
              service::QueryResponse* out);

  /// Records a completed response under (request_key, snapshot_version).
  /// Re-inserting an existing key only refreshes it — by the determinism
  /// contract the payload cannot differ.
  void Insert(const std::string& request_key, uint64_t snapshot_version,
              const service::QueryResponse& response);

  size_t size() const;
  size_t capacity() const { return stripes_.size() * per_stripe_; }
  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }

 private:
  struct Entry {
    std::string key;
    service::QueryResponse response;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  static std::string ComposeKey(const std::string& request_key,
                                uint64_t snapshot_version);
  Stripe& StripeFor(const std::string& key);

  const size_t per_stripe_;
  std::vector<Stripe> stripes_;
  std::unique_ptr<obs::MetricsRegistry> owned_;  // when none injected
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* insertions_;
  obs::Counter* evictions_;
  obs::Gauge* entries_;
};

}  // namespace cache
}  // namespace updb

#endif  // UPDB_CACHE_RESPONSE_CACHE_H_
