// Copyright 2026 The updb Authors.
// Snapshot-scoped cross-request domination-verdict memo (ROADMAP open
// item 2 -> PR 8): decided (candidate-partition, B', R') verdicts recorded
// by one IDCA run become visible to every later run against the same
// immutable store snapshot — within a dispatch round and across rounds —
// so repeated queries against a pinned version stop re-deriving the same
// geometry.
//
// Why sharing is sound: ClassifyDomination is a pure function of the three
// partition regions plus the (criterion, norm) configuration, and a
// DecompositionTree's frontier at level L is a pure function of
// (pdf, split policy, L). A memo key therefore names the exact triple a
// recomputation would test, and a hit returns exactly the verdict that
// recomputation would produce — payloads with the memo on are
// bit-identical to payloads with it off (service_test's monotonicity
// oracle). Only *decided* verdicts are stored; kUndecided triples are
// always re-tested one level deeper, exactly as without the memo.
//
// Invalidation is free: the snapshot version is mixed into every key's
// context (MixContext), so a publish makes all prior entries unreachable
// garbage that overwrite eviction reclaims — no epoch scan, no clear.
//
// Concurrency contract: the table is a fixed power-of-two array of
// two-word slots (tag word + value word) accessed with relaxed/acq-rel
// atomics only — no mutex anywhere, so the engine hot path stays
// lock-free under any number of concurrent workers (striping here is
// slot-space partitioning: disjoint keys touch disjoint cache lines). A
// torn or stale read fails the double-word tag compare and degrades to a
// miss; a *wrong* verdict would need two distinct keys to collide in all
// 125 tag bits (~2^-125 per probe), which is treated as negligible and is
// the same class of risk every content-hash dedup accepts. Lost inserts
// (two writers racing one empty slot) and evictions only cost future
// hits, never correctness.
//
// Memory contract: footprint is fixed at construction (capacity slots of
// 16 bytes); a full probe window overwrites in place and bumps the
// eviction counter, so the memo can never grow under sustained traffic.
// Hit/miss/insert/evict totals register in an obs::MetricsRegistry;
// engine runs accumulate a local VerdictMemoTally and flush it once per
// run so the inner loop touches no shared counter.

#ifndef UPDB_CACHE_VERDICT_MEMO_H_
#define UPDB_CACHE_VERDICT_MEMO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace updb {
namespace cache {

/// Run-local probe statistics, flushed to the memo's registry counters in
/// one call (VerdictMemo::Flush) instead of per probe.
struct VerdictMemoTally {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  VerdictMemoTally& operator+=(const VerdictMemoTally& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    evictions += o.evictions;
    return *this;
  }
};

/// The lock-free memo table. Thread-safe for any mix of concurrent
/// Lookup/Insert/Flush callers.
class VerdictMemo {
 public:
  /// Verdict codes stored in a slot's value word (0 is reserved for
  /// "miss" so Lookup can return one int).
  static constexpr int kDominates = 1;
  static constexpr int kDominated = 2;

  /// `capacity` is rounded up to a power of two (minimum 64 slots).
  /// Series register in `registry`; nullptr creates a private registry.
  explicit VerdictMemo(size_t capacity,
                       obs::MetricsRegistry* registry = nullptr);

  VerdictMemo(const VerdictMemo&) = delete;
  VerdictMemo& operator=(const VerdictMemo&) = delete;

  /// Precomputed slot address + 125-bit tag of one
  /// (context, candidate, level, B'-node, R'-node, candidate-node) triple.
  struct Key {
    uint64_t tag = 0;     // full word, never 0 for a live key
    uint64_t check = 0;   // upper 62 bits verified against the value word
    size_t slot = 0;      // probe window base
  };

  /// Key context shared by every run against one snapshot + query object:
  /// mixes the snapshot version (invalidation-by-version) with the query
  /// PDF's canonical serialization token.
  static uint64_t MixContext(uint64_t snapshot_version, uint64_t query_token);

  /// Per-run context: the context above plus the run's database-object
  /// operand, the operand direction (kNN tests (cand, B=obj, R=q); RkNN
  /// tests (cand, B=q, R=obj) — different geometry, different keys), and a
  /// fingerprint of the engine configuration fields the verdict depends
  /// on.
  static uint64_t MixRun(uint64_t context, uint64_t object_id,
                         bool target_is_database_object,
                         uint64_t config_fingerprint);

  Key MakeKey(uint64_t run_context, uint64_t candidate_id, uint32_t level,
              uint32_t b_node, uint32_t r_node, uint32_t cand_node) const;

  /// Returns kDominates/kDominated on a hit, 0 on a miss.
  int Lookup(const Key& key, VerdictMemoTally& tally) const;

  /// Records a decided verdict (kDominates or kDominated).
  void Insert(const Key& key, int verdict, VerdictMemoTally& tally);

  /// Adds a run's local tally into the registry counters.
  void Flush(const VerdictMemoTally& tally);

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t inserts() const { return inserts_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }

 private:
  /// Slots probed per key (linear window from Key::slot).
  static constexpr size_t kProbe = 4;

  /// A live slot holds tag != 0 and value = (check << 2) | verdict. The
  /// value word is published before the tag word (release), so a reader
  /// that acquires a matching tag either sees the matching value or a
  /// value whose embedded check bits mismatch (-> miss).
  struct Slot {
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> value{0};
  };

  const size_t capacity_;  // power of two
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<obs::MetricsRegistry> owned_;  // when none injected
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* inserts_;
  obs::Counter* evictions_;
};

}  // namespace cache
}  // namespace updb

#endif  // UPDB_CACHE_VERDICT_MEMO_H_
