#include "cache/verdict_memo.h"

namespace updb {
namespace cache {

namespace {

/// splitmix64 finalizer: a cheap full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 64;  // minimum table size
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

VerdictMemo::VerdictMemo(size_t capacity, obs::MetricsRegistry* registry)
    : capacity_(RoundUpPow2(capacity)), mask_(capacity_ - 1) {
  if (registry == nullptr) {
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_.get();
  }
  slots_ = std::make_unique<Slot[]>(capacity_);
  hits_ = registry->Counter("updb_verdict_memo_hits_total",
                            "Cross-request verdict memo hits");
  misses_ = registry->Counter("updb_verdict_memo_misses_total",
                              "Cross-request verdict memo misses");
  inserts_ = registry->Counter("updb_verdict_memo_insertions_total",
                               "Cross-request verdict memo insertions");
  evictions_ = registry->Counter(
      "updb_verdict_memo_evictions_total",
      "Verdict memo slots overwritten because the probe window was full");
  registry
      ->Gauge("updb_verdict_memo_slots",
              "Configured verdict memo capacity in slots (16 bytes each)")
      ->Set(static_cast<int64_t>(capacity_));
}

uint64_t VerdictMemo::MixContext(uint64_t snapshot_version,
                                 uint64_t query_token) {
  return Mix64(Mix64(snapshot_version) ^ query_token);
}

uint64_t VerdictMemo::MixRun(uint64_t context, uint64_t object_id,
                             bool target_is_database_object,
                             uint64_t config_fingerprint) {
  uint64_t h = Mix64(context ^ Mix64(object_id));
  h ^= target_is_database_object ? 0x517cc1b727220a95ULL
                                 : 0x2545f4914f6cdd1dULL;
  return Mix64(h ^ config_fingerprint);
}

VerdictMemo::Key VerdictMemo::MakeKey(uint64_t run_context,
                                      uint64_t candidate_id, uint32_t level,
                                      uint32_t b_node, uint32_t r_node,
                                      uint32_t cand_node) const {
  // Two independent mixes give 128 hash bits; 125 of them (64 tag + 62
  // positional check + probe offset entropy) must collide for a wrong
  // verdict to surface.
  uint64_t h = run_context ^ Mix64(candidate_id ^ (uint64_t{level} << 48));
  h = Mix64(h ^ (uint64_t{b_node} << 32) ^ uint64_t{r_node});
  h = Mix64(h ^ uint64_t{cand_node});
  const uint64_t h2 = Mix64(h ^ 0x6a09e667f3bcc909ULL);
  Key key;
  key.tag = h != 0 ? h : 1;  // 0 marks an empty slot
  key.check = h2 >> 2;
  key.slot = static_cast<size_t>(h2) & mask_;
  return key;
}

int VerdictMemo::Lookup(const Key& key, VerdictMemoTally& tally) const {
  for (size_t j = 0; j < kProbe; ++j) {
    const Slot& slot = slots_[(key.slot + j) & mask_];
    const uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == 0) break;  // slots never empty out: the key is absent
    if (tag != key.tag) continue;
    const uint64_t value = slot.value.load(std::memory_order_acquire);
    // The value word embeds the key's second hash; a concurrent overwrite
    // of this slot by a different key fails this check and reads as a
    // miss, never as a wrong verdict.
    if ((value >> 2) != key.check) continue;
    const int verdict = static_cast<int>(value & 3);
    if (verdict != kDominates && verdict != kDominated) continue;
    ++tally.hits;
    return verdict;
  }
  ++tally.misses;
  return 0;
}

void VerdictMemo::Insert(const Key& key, int verdict,
                         VerdictMemoTally& tally) {
  const uint64_t value = (key.check << 2) | static_cast<uint64_t>(verdict);
  size_t victim = (key.slot + (key.check & (kProbe - 1))) & mask_;
  bool evict = true;
  for (size_t j = 0; j < kProbe; ++j) {
    Slot& slot = slots_[(key.slot + j) & mask_];
    const uint64_t tag = slot.tag.load(std::memory_order_relaxed);
    if (tag == key.tag) return;  // already recorded (verdicts never change)
    if (tag == 0) {
      victim = (key.slot + j) & mask_;
      evict = false;
      break;
    }
  }
  Slot& slot = slots_[victim];
  // Publish value before tag: a reader acquiring the new tag is
  // guaranteed to see this value (or a newer one, which its embedded
  // check bits then veto).
  slot.value.store(value, std::memory_order_relaxed);
  slot.tag.store(key.tag, std::memory_order_release);
  ++tally.inserts;
  if (evict) ++tally.evictions;
}

void VerdictMemo::Flush(const VerdictMemoTally& tally) {
  if (tally.hits > 0) hits_->Add(tally.hits);
  if (tally.misses > 0) misses_->Add(tally.misses);
  if (tally.inserts > 0) inserts_->Add(tally.inserts);
  if (tally.evictions > 0) evictions_->Add(tally.evictions);
}

}  // namespace cache
}  // namespace updb
