#include "cache/response_cache.h"

#include "common/status.h"

namespace updb {
namespace cache {

namespace {

constexpr size_t kStripes = 8;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ResponseCache::ResponseCache(size_t capacity, obs::MetricsRegistry* registry)
    : per_stripe_(capacity >= kStripes ? capacity / kStripes
                                       : (capacity > 0 ? capacity : 1)),
      stripes_(capacity >= kStripes ? kStripes : 1) {
  UPDB_CHECK(capacity >= 1);
  if (registry == nullptr) {
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_.get();
  }
  hits_ = registry->Counter("updb_response_cache_hits_total",
                            "Responses served from the response cache");
  misses_ = registry->Counter("updb_response_cache_misses_total",
                              "Response cache lookups that missed");
  insertions_ = registry->Counter("updb_response_cache_insertions_total",
                                  "Responses recorded in the response cache");
  evictions_ = registry->Counter(
      "updb_response_cache_evictions_total",
      "Responses evicted from the response cache (LRU, capacity bound)");
  entries_ = registry->Gauge("updb_response_cache_entries",
                             "Responses currently cached");
}

std::string ResponseCache::ComposeKey(const std::string& request_key,
                                      uint64_t snapshot_version) {
  std::string key;
  key.reserve(request_key.size() + 20);
  key.append("v=");
  key.append(std::to_string(snapshot_version));
  key.push_back('\n');
  key.append(request_key);
  return key;
}

ResponseCache::Stripe& ResponseCache::StripeFor(const std::string& key) {
  return stripes_[Fnv1a(key) % stripes_.size()];
}

bool ResponseCache::Lookup(const std::string& request_key,
                           uint64_t snapshot_version,
                           service::QueryResponse* out) {
  const std::string key = ComposeKey(request_key, snapshot_version);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    misses_->Add(1);
    return false;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  *out = it->second->response;
  hits_->Add(1);
  return true;
}

void ResponseCache::Insert(const std::string& request_key,
                           uint64_t snapshot_version,
                           const service::QueryResponse& response) {
  const std::string key = ComposeKey(request_key, snapshot_version);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  stripe.lru.push_front(Entry{key, response});
  stripe.index.emplace(key, stripe.lru.begin());
  insertions_->Add(1);
  if (stripe.lru.size() > per_stripe_) {
    stripe.index.erase(stripe.lru.back().key);
    stripe.lru.pop_back();
    evictions_->Add(1);
  } else {
    entries_->Add(1);
  }
}

size_t ResponseCache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.lru.size();
  }
  return total;
}

}  // namespace cache
}  // namespace updb
