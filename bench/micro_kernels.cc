// Google-benchmark microbenchmarks for the hot kernels: the two
// domination criteria, generating-function expansion, UGF multiplication,
// decomposition deepening and R-tree kNN.

#include <benchmark/benchmark.h>

#include "updb.h"

namespace updb {
namespace {

/// Pins the kernel dispatch table for one benchmark body, restoring the
/// prior mode on exit; the scalar/vector row pairs below use it to measure
/// both tables in one binary run.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(bool force_scalar)
      : was_scalar_(&gf::ActiveKernels() == &gf::ScalarKernels()) {
    gf::ForceScalarKernels(force_scalar);
  }
  ~ScopedDispatch() { gf::ForceScalarKernels(was_scalar_); }

 private:
  bool was_scalar_;
};

std::vector<Rect> RandomRects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    rects.push_back(
        Rect::Centered(center, {rng.Uniform(0, 0.05), rng.Uniform(0, 0.05)}));
  }
  return rects;
}

void BM_MinMaxDominates(benchmark::State& state) {
  const auto rects = RandomRects(3000, 1);
  size_t i = 0;
  for (auto _ : state) {
    const Rect& a = rects[i % rects.size()];
    const Rect& b = rects[(i + 1) % rects.size()];
    const Rect& r = rects[(i + 2) % rects.size()];
    benchmark::DoNotOptimize(MinMaxDominates(a, b, r));
    ++i;
  }
}
BENCHMARK(BM_MinMaxDominates);

void BM_OptimalDominates(benchmark::State& state) {
  const auto rects = RandomRects(3000, 2);
  size_t i = 0;
  for (auto _ : state) {
    const Rect& a = rects[i % rects.size()];
    const Rect& b = rects[(i + 1) % rects.size()];
    const Rect& r = rects[(i + 2) % rects.size()];
    benchmark::DoNotOptimize(OptimalDominates(a, b, r));
    ++i;
  }
}
BENCHMARK(BM_OptimalDominates);

void BM_PoissonBinomial(benchmark::State& state, bool force_scalar) {
  ScopedDispatch dispatch(force_scalar);
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialPdf(probs));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
  state.SetLabel(gf::ActiveKernelName());
}
BENCHMARK_CAPTURE(BM_PoissonBinomial, scalar, true)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_PoissonBinomial, vector, false)
    ->Range(16, 1024)
    ->Complexity();

void BM_UgfFull(benchmark::State& state, bool force_scalar) {
  ScopedDispatch dispatch(force_scalar);
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> lbs(n), ubs(n);
  for (size_t i = 0; i < n; ++i) {
    lbs[i] = rng.NextDouble() * 0.5;
    ubs[i] = lbs[i] + 0.5 * rng.NextDouble();
  }
  for (auto _ : state) {
    UncertainGeneratingFunction ugf;
    for (size_t i = 0; i < n; ++i) ugf.Multiply(lbs[i], ubs[i]);
    benchmark::DoNotOptimize(ugf.Bounds());
  }
  state.SetLabel(gf::ActiveKernelName());
}
BENCHMARK_CAPTURE(BM_UgfFull, scalar, true)->Range(8, 128);
BENCHMARK_CAPTURE(BM_UgfFull, vector, false)->Range(8, 128);

void BM_UgfTruncated(benchmark::State& state, bool force_scalar) {
  ScopedDispatch dispatch(force_scalar);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = 10;
  Rng rng(5);
  std::vector<double> lbs(n), ubs(n);
  for (size_t i = 0; i < n; ++i) {
    lbs[i] = rng.NextDouble() * 0.5;
    ubs[i] = lbs[i] + 0.5 * rng.NextDouble();
  }
  for (auto _ : state) {
    UncertainGeneratingFunction ugf(k);
    for (size_t i = 0; i < n; ++i) ugf.Multiply(lbs[i], ubs[i]);
    benchmark::DoNotOptimize(ugf.ProbLessThan(k));
  }
  state.SetLabel(gf::ActiveKernelName());
}
BENCHMARK_CAPTURE(BM_UgfTruncated, scalar, true)->Range(8, 128);
BENCHMARK_CAPTURE(BM_UgfTruncated, vector, false)->Range(8, 128);

void BM_UgfBatch4(benchmark::State& state, bool force_scalar) {
  // Four candidate factor sequences advanced in lockstep through one SoA
  // workspace — the shape the IDCA refinement loop stages per chunk.
  // Compare per-lane cost against BM_UgfFull at the same n.
  ScopedDispatch dispatch(force_scalar);
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> lb4(n * UgfBatch::kLanes), ub4(n * UgfBatch::kLanes);
  for (size_t i = 0; i < n * UgfBatch::kLanes; ++i) {
    lb4[i] = rng.NextDouble() * 0.5;
    ub4[i] = lb4[i] + 0.5 * rng.NextDouble();
  }
  UgfBatch batch;
  CountDistributionBounds out = CountDistributionBounds::Zero(n + 1);
  for (auto _ : state) {
    batch.Begin(UgfBatch::kNoTruncation, UgfBatch::kLanes);
    for (size_t i = 0; i < n; ++i) {
      batch.MultiplyFactors(lb4.data() + i * UgfBatch::kLanes,
                            ub4.data() + i * UgfBatch::kLanes);
    }
    batch.FinishBounds();
    for (size_t l = 0; l < UgfBatch::kLanes; ++l) batch.EmitBounds(l, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(gf::ActiveKernelName());
}
BENCHMARK_CAPTURE(BM_UgfBatch4, scalar, true)->Range(8, 128);
BENCHMARK_CAPTURE(BM_UgfBatch4, vector, false)->Range(8, 128);

void BM_DecompositionDeepen(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  UniformPdf pdf(Rect(Point{0.0, 0.0}, Point{1.0, 1.0}));
  for (auto _ : state) {
    DecompositionTree tree(&pdf);
    tree.DeepenTo(depth);
    benchmark::DoNotOptimize(tree.frontier().size());
  }
}
BENCHMARK(BM_DecompositionDeepen)->DenseRange(1, 8);

void BM_RTreeKnn(benchmark::State& state) {
  workload::SyntheticConfig cfg;
  cfg.num_objects = 10000;
  cfg.max_extent = 0.004;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  Rng rng(6);
  for (auto _ : state) {
    const Rect q =
        Rect::Centered(Point{rng.NextDouble(), rng.NextDouble()}, {0.0, 0.0});
    benchmark::DoNotOptimize(index.KnnByMinDist(q, 10));
  }
}
BENCHMARK(BM_RTreeKnn);

void BM_PDomGivenPair(benchmark::State& state) {
  UniformPdf a(Rect(Point{0.3, 0.3}, Point{0.5, 0.5}));
  UniformPdf b(Rect(Point{0.4, 0.4}, Point{0.6, 0.6}));
  UniformPdf r(Rect(Point{0.0, 0.0}, Point{0.2, 0.2}));
  DecompositionTree tree(&a);
  tree.DeepenTo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PDomGivenPair(tree.frontier(), b.bounds(), r.bounds()));
  }
}
BENCHMARK(BM_PDomGivenPair)->DenseRange(2, 8, 2);

}  // namespace
}  // namespace updb

BENCHMARK_MAIN();
