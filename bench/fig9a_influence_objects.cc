// Figure 9(a): per-iteration runtime of IDCA as a function of the number
// of influence objects. The paper varies the distance between Q and B (a
// farther B has more objects whose domination relation is uncertain); we
// do the same by picking B at growing MinDist ranks.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("fig9a",
                     "runtime per iteration vs number of influence objects "
                     "(paper: Fig. 9a)");

  workload::SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(10000);  // paper scale
  cfg.max_extent = 0.002;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  const size_t num_queries = 3;
  const int max_iterations = 6;  // paper: 8

  IdcaConfig config;
  config.max_iterations = max_iterations;
  config.uncertainty_epsilon = -1.0;
  IdcaEngine engine(db, config);

  std::printf(
      "b_rank,avg_influence_objects,iteration,cumulative_runtime_sec\n");
  for (size_t rank : {5u, 10u, 20u, 40u, 80u}) {
    double influence_total = 0.0;
    std::vector<double> cumulative(max_iterations + 1, 0.0);
    std::vector<size_t> counts(max_iterations + 1, 0);
    Rng rng(500 + rank);
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      const auto r = workload::MakeQueryObject(
          center, cfg.max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), rank);
      const IdcaResult result = engine.ComputeDomCount(b, *r);
      influence_total += static_cast<double>(result.influence_count);
      for (const IdcaIterationStats& s : result.iterations) {
        cumulative[s.iteration] += s.cumulative_seconds;
        ++counts[s.iteration];
      }
    }
    for (int it = 0; it <= max_iterations; ++it) {
      if (counts[it] == 0) continue;
      std::printf("%zu,%.1f,%d,%.6f\n", rank,
                  influence_total / static_cast<double>(num_queries), it,
                  cumulative[it] / static_cast<double>(counts[it]));
    }
  }
  return 0;
}
