// Ablation 5: the expected-distance kNN baseline ([22]-style, Section II
// of the paper) against possible-world-correct kNN. The paper's
// motivation: expected distances "may produce very inaccurate results,
// that may have a very small probability of being an actual result". We
// measure, across uncertainty extents, (a) the overlap between the
// expected-distance top-k and the k objects with the highest true kNN
// probability, and (b) the lowest true kNN probability among the
// expected-distance answers.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("abl5",
                     "expected-distance kNN baseline vs possible-world "
                     "semantics (Section II motivation)");

  const size_t k = 5;
  const size_t num_queries = 5;
  std::printf(
      "max_extent,avg_overlap_at_k,min_true_prob_of_ed_answer\n");
  for (double max_extent : {0.01, 0.05, 0.1, 0.2}) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = bench::Scaled(300);
    cfg.max_extent = max_extent;
    cfg.model = workload::ObjectModel::kDiscrete;
    cfg.samples_per_object = 64;
    const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
    MonteCarloConfig mc_cfg;
    mc_cfg.samples_per_object = 64;
    MonteCarloEngine mc(db, mc_cfg);

    double overlap_total = 0.0;
    double min_prob = 1.0;
    Rng rng(3000 + static_cast<uint64_t>(max_extent * 1000));
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.Uniform(0.3, 0.7), rng.Uniform(0.3, 0.7)};
      const auto query = workload::MakeQueryObject(
          center, max_extent, workload::ObjectModel::kDiscrete, 64, rng);

      // Baseline answer.
      const auto ed = ExpectedDistanceKnn(db, *query, k, 128, 17 + q);

      // Ground truth: true P(object is a kNN) for a candidate pool (the
      // 4k closest by MinDist — everything else has negligible mass).
      const RTree index = BuildRTree(db.objects());
      const auto pool = index.KnnByMinDist(query->bounds(), 4 * k);
      std::vector<std::pair<double, ObjectId>> truth;
      for (const RTreeEntry& e : pool) {
        truth.emplace_back(mc.ProbDomCountLessThan(e.id, *query, k), e.id);
      }
      std::sort(truth.rbegin(), truth.rend());

      size_t overlap = 0;
      for (const auto& e : ed) {
        for (size_t i = 0; i < k; ++i) {
          overlap += truth[i].second == e.id;
        }
        // True probability of this expected-distance answer.
        double p = 0.0;
        for (const auto& [prob, id] : truth) {
          if (id == e.id) p = prob;
        }
        min_prob = std::min(min_prob, p);
      }
      overlap_total += static_cast<double>(overlap) / static_cast<double>(k);
    }
    std::printf("%.2f,%.3f,%.3f\n", max_extent,
                overlap_total / static_cast<double>(num_queries), min_prob);
  }
  return 0;
}
