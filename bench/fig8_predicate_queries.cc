// Figure 8: runtime of IDCA for threshold-kNN predicate queries ("is B
// among the k nearest neighbors of Q with probability > tau?") for k =
// 1..25 and tau in {0.25, 0.5, 0.75}, against the MC comparison partner.
// The paper's finding: with a predicate IDCA terminates after very few
// refinement iterations and runs orders of magnitude below MC.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("fig8",
                     "IDCA vs MC runtime for threshold-kNN predicates "
                     "(paper: Fig. 8)");

  const size_t samples = 500;
  workload::SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(2000);  // paper: 10,000
  cfg.max_extent = 0.004;
  cfg.model = workload::ObjectModel::kDiscrete;
  cfg.samples_per_object = samples;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  const size_t num_queries = 3;

  // Per-query fixtures: query object and B (10th smallest MinDist).
  struct Fixture {
    std::shared_ptr<const Pdf> r;
    ObjectId b;
  };
  std::vector<Fixture> fixtures;
  Rng rng(99);
  for (size_t q = 0; q < num_queries; ++q) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    auto r = workload::MakeQueryObject(
        center, cfg.max_extent, workload::ObjectModel::kDiscrete, samples,
        rng);
    const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
    fixtures.push_back(Fixture{std::move(r), b});
  }

  // MC cost: one full domination-count PDF per query (the PDF answers any
  // k and tau, so the paper's MC line is flat in k).
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = samples;
  mc_cfg.reference_samples = samples / 10;
  MonteCarloEngine mc(db, mc_cfg);
  double mc_seconds = 0.0;
  for (const Fixture& f : fixtures) {
    mc_seconds += mc.DomCountPdf(f.b, *f.r).seconds;
  }
  mc_seconds /= static_cast<double>(num_queries);

  IdcaConfig config;
  config.max_iterations = 10;
  IdcaEngine engine(db, config);

  std::printf("k,tau,idca_runtime_sec,mc_runtime_sec,idca_decided\n");
  for (size_t k = 1; k <= 25; k += 2) {
    for (double tau : {0.25, 0.5, 0.75}) {
      double idca_seconds = 0.0;
      size_t decided = 0;
      for (const Fixture& f : fixtures) {
        const IdcaResult r =
            engine.ComputeDomCount(f.b, *f.r, IdcaPredicate{k, tau});
        idca_seconds += r.seconds;
        decided += r.decision != PredicateDecision::kUndecided;
      }
      std::printf("%zu,%.2f,%.6f,%.4f,%zu/%zu\n", k, tau,
                  idca_seconds / static_cast<double>(num_queries),
                  mc_seconds, decided, num_queries);
    }
  }
  return 0;
}
