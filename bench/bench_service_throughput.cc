// Service benchmark: closed-loop throughput and tail latency of the
// concurrent QueryService over worker count x batch size, with a built-in
// determinism oracle — every configuration must produce bit-identical
// responses (equal digests) or the binary exits 2.
//
// Closed loop: the whole trace is admitted up front (queue sized to hold
// it), so workers are never starved and the measured rate is the service's
// capacity at that configuration. CSV to stdout; pass a path argument to
// also write the summary JSON (the format committed as
// BENCH_service_throughput.json). UPDB_BENCH_SCALE scales the database
// and trace sizes.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "updb.h"

int main(int argc, char** argv) {
  using namespace updb;
  bench::PrintBanner("bench_service_throughput",
                     "QueryService closed-loop throughput vs workers/batch");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware_threads=%u\n", hw);

  workload::SyntheticConfig dbcfg;
  dbcfg.num_objects = bench::Scaled(300);
  dbcfg.max_extent = 0.03;
  dbcfg.seed = 11;
  auto db = std::make_shared<const UncertainDatabase>(
      workload::MakeSyntheticDatabase(dbcfg));

  service::TraceConfig tcfg;
  tcfg.num_requests = bench::Scaled(80);
  tcfg.seed = 23;
  tcfg.query_extent = 0.03;
  tcfg.k_max = 6;
  tcfg.budget.max_iterations = 4;
  tcfg.deadline_fraction = 0.25;  // a quarter of the load is deadline-bound
  tcfg.deadline_ms = 15.0;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*db, tcfg);

  struct Row {
    size_t workers = 0;
    size_t batch = 0;
    double seconds = 0.0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    uint64_t digest = 0;
  };
  std::vector<Row> rows;
  std::printf("series,workers,batch,seconds,throughput_qps,p50_ms,p95_ms,"
              "p99_ms,digest\n");
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t batch : {size_t{1}, size_t{8}}) {
      service::QueryServiceOptions opts;
      opts.num_workers = workers;
      opts.batch_size = batch;
      opts.max_queue = trace.size();
      // Pause admission while the trace loads so every configuration
      // executes the identical closed-loop backlog.
      opts.start_paused = true;
      service::QueryService svc(db, opts);
      std::vector<uint64_t> tickets;
      tickets.reserve(trace.size());
      for (const service::QueryRequest& req : trace) {
        const StatusOr<uint64_t> ticket = svc.Submit(req);
        if (!ticket.ok()) {
          std::fprintf(stderr, "submit failed: %s\n",
                       ticket.status().ToString().c_str());
          return 1;
        }
        tickets.push_back(*ticket);
      }
      Stopwatch timer;
      svc.Resume();
      svc.Flush();
      const double seconds = timer.ElapsedSeconds();
      std::vector<service::QueryResponse> responses;
      responses.reserve(tickets.size());
      for (uint64_t t : tickets) responses.push_back(svc.Take(t));
      const service::MetricsSnapshot m = svc.metrics().Snapshot();
      Row row;
      row.workers = workers;
      row.batch = batch;
      row.seconds = seconds;
      row.qps = static_cast<double>(trace.size()) / seconds;
      row.p50_ms = m.latency_p50_ms;
      row.p95_ms = m.latency_p95_ms;
      row.p99_ms = m.latency_p99_ms;
      row.digest = service::ResponseDigest(
          std::span<const service::QueryResponse>(responses));
      rows.push_back(row);
      std::printf("service_throughput,%zu,%zu,%.3f,%.2f,%.2f,%.2f,%.2f,"
                  "%016llx\n",
                  row.workers, row.batch, row.seconds, row.qps, row.p50_ms,
                  row.p95_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.digest));
    }
  }

  bool deterministic = true;
  for (const Row& row : rows) deterministic &= row.digest == rows[0].digest;
  std::printf("series,deterministic\nservice_determinism,%s\n",
              deterministic ? "yes" : "NO");

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_service_throughput\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f,
                 "  \"note\": \"closed loop (whole trace admitted before "
                 "Resume); latencies therefore include backlog wait and "
                 "p50/p95/p99 mostly reflect drain order — compare them "
                 "across configurations, not to open-loop service "
                 "latency. Responses are bit-identical across all "
                 "configurations (see digest).\",\n");
    std::fprintf(f, "  \"db_objects\": %zu,\n", db->size());
    std::fprintf(f, "  \"requests\": %zu,\n", trace.size());
    std::fprintf(f, "  \"iteration_budget\": %d,\n",
                 tcfg.budget.max_iterations);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"response_digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(rows[0].digest));
    std::fprintf(f, "  \"series\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %zu, \"batch\": %zu, \"seconds\": "
                   "%.3f, \"throughput_qps\": %.2f, \"p50_ms\": %.2f, "
                   "\"p95_ms\": %.2f, \"p99_ms\": %.2f}%s\n",
                   r.workers, r.batch, r.seconds, r.qps, r.p50_ms, r.p95_ms,
                   r.p99_ms, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return deterministic ? 0 : 2;
}
