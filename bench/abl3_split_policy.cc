// Ablation 3: decomposition split policies. The paper's kd-tree scheme
// cycles through the axes (round-robin); an alternative is to always
// bisect the longest side. On anisotropic objects (skewed extents) the
// longest-side policy should shed uncertainty faster per iteration.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

namespace {

/// Synthetic database with anisotropic uncertainty rectangles: extent in
/// dimension 0 is up to `skew` times the extent in dimension 1.
updb::UncertainDatabase MakeAnisotropic(size_t n, double max_extent,
                                        double skew, uint64_t seed) {
  using namespace updb;
  Rng rng(seed);
  UncertainDatabase db;
  for (size_t i = 0; i < n; ++i) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    const double ex = rng.Uniform(0, max_extent * skew);
    const double ey = rng.Uniform(0, max_extent);
    db.Add(std::make_shared<UniformPdf>(
        Rect::Centered(center, {ex / 2, ey / 2})));
  }
  return db;
}

}  // namespace

int main() {
  using namespace updb;
  bench::PrintBanner("abl3",
                     "split policy: round-robin vs longest-side on "
                     "anisotropic objects");

  const size_t n = bench::Scaled(5000);
  const int max_iterations = 5;
  const size_t num_queries = 10;

  std::printf("skew,policy,iteration,avg_total_uncertainty\n");
  for (double skew : {1.0, 4.0, 16.0}) {
    const UncertainDatabase db = MakeAnisotropic(n, 0.004, skew, 11);
    const RTree index = BuildRTree(db.objects());
    for (auto policy : {SplitPolicy::kRoundRobin, SplitPolicy::kLongestSide}) {
      IdcaConfig config;
      config.split_policy = policy;
      config.max_iterations = max_iterations;
      config.uncertainty_epsilon = -1.0;
      IdcaEngine engine(db, config);
      std::vector<double> unc(max_iterations + 1, 0.0);
      std::vector<size_t> counts(max_iterations + 1, 0);
      Rng rng(21);
      for (size_t q = 0; q < num_queries; ++q) {
        const Point center{rng.NextDouble(), rng.NextDouble()};
        const auto r = workload::MakeQueryObject(
            center, 0.004, workload::ObjectModel::kUniform, 0, rng);
        const ObjectId b =
            workload::PickByMinDistRank(index, r->bounds(), 10);
        const IdcaResult result = engine.ComputeDomCount(b, *r);
        for (const IdcaIterationStats& s : result.iterations) {
          unc[s.iteration] += s.total_uncertainty;
          ++counts[s.iteration];
        }
      }
      for (int it = 0; it <= max_iterations; ++it) {
        if (counts[it] == 0) continue;
        std::printf("%.0f,%s,%d,%.4f\n", skew,
                    policy == SplitPolicy::kRoundRobin ? "round_robin"
                                                       : "longest_side",
                    it, unc[it] / static_cast<double>(counts[it]));
      }
    }
  }
  return 0;
}
