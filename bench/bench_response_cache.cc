// Cross-request caching benchmark: one query trace replayed three ways —
// caches off (baseline), caches on against empty caches (cold), and the
// same trace again through a fresh service *sharing* the now-populated
// caches (warm; tickets restart at 0 so the response sequences are
// digest-comparable) — with built-in oracles:
//
//  * digest oracle: all three replays must produce bit-identical response
//    payloads (caching is payload-invariant), or exit 2;
//  * hit oracle: every warm request must be served from the response
//    cache, or exit 2;
//  * memory oracle: the response cache must stay within its entry
//    capacity and the memo within its fixed slot count, or exit 2.
//
// The warm-vs-cold latency ratio is recorded (not gated — wall-clock
// ratios flake on loaded machines; the correctness oracles above are the
// contract). CSV to stdout; pass a path to also write the summary JSON
// committed as BENCH_response_cache.json. UPDB_BENCH_SCALE scales the
// workload.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.h"
#include "updb.h"

namespace {

using namespace updb;

constexpr size_t kResponseCacheCapacity = 256;
constexpr size_t kVerdictMemoSlots = 1 << 16;

struct RunResult {
  double seconds = 0.0;
  uint64_t digest = 0;
  size_t cache_hits = 0;
};

/// One closed-loop replay through a fresh service: submit the whole
/// trace, Flush, Take everything, and digest the response sequence. The
/// timed interval covers submit -> flush, which is where both the cache
/// probe (Submit fast path) and execution live.
RunResult Replay(const std::shared_ptr<const UncertainDatabase>& db,
                 const std::vector<service::QueryRequest>& trace,
                 const std::shared_ptr<cache::ResponseCache>& responses,
                 const std::shared_ptr<cache::VerdictMemo>& memo) {
  service::QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 8;
  opts.max_queue = trace.size();
  opts.response_cache = responses;
  opts.verdict_memo = memo;
  service::QueryService svc(db, opts);
  std::vector<uint64_t> tickets;
  tickets.reserve(trace.size());
  Stopwatch timer;
  for (const service::QueryRequest& req : trace) {
    const StatusOr<uint64_t> ticket = svc.Submit(req);
    if (!ticket.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   ticket.status().ToString().c_str());
      std::exit(1);
    }
    tickets.push_back(*ticket);
  }
  svc.Flush();
  RunResult out;
  out.seconds = timer.ElapsedSeconds();
  std::vector<service::QueryResponse> collected;
  collected.reserve(tickets.size());
  for (uint64_t t : tickets) collected.push_back(svc.Take(t));
  out.digest = service::ResponseDigest(
      std::span<const service::QueryResponse>(collected));
  for (const service::QueryResponse& r : collected) {
    out.cache_hits += r.stats.cache_hit ? 1 : 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner("bench_response_cache",
                     "cold vs warm cross-request caching: payload "
                     "invariance, hit rate, bounded memory");

  workload::SyntheticConfig dbcfg;
  dbcfg.num_objects = bench::Scaled(300);
  dbcfg.max_extent = 0.03;
  dbcfg.seed = 11;
  const auto db = std::make_shared<const UncertainDatabase>(
      workload::MakeSyntheticDatabase(dbcfg));

  service::TraceConfig tcfg;
  tcfg.num_requests = bench::Scaled(60);
  tcfg.seed = 29;
  tcfg.query_extent = 0.03;
  tcfg.k_max = 6;
  tcfg.budget.max_iterations = 4;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*db, tcfg);

  // min-of-3: a fresh cache pair per repeat so every cold pass really is
  // cold; the warm pass of the same repeat shares the populated caches.
  constexpr int kRepeats = 3;
  RunResult baseline, cold, warm;
  baseline.seconds = cold.seconds = warm.seconds = 1e100;
  size_t cache_entries = 0;
  uint64_t memo_inserts = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const RunResult b = Replay(db, trace, nullptr, nullptr);
    obs::MetricsRegistry registry;
    const auto responses = std::make_shared<cache::ResponseCache>(
        kResponseCacheCapacity, &registry);
    const auto memo =
        std::make_shared<cache::VerdictMemo>(kVerdictMemoSlots, &registry);
    const RunResult c = Replay(db, trace, responses, memo);
    const RunResult w = Replay(db, trace, responses, memo);
    if (b.seconds < baseline.seconds) baseline = b;
    if (c.seconds < cold.seconds) cold = c;
    if (w.seconds < warm.seconds) warm = w;
    cache_entries = std::max(cache_entries, responses->size());
    memo_inserts = std::max(memo_inserts, memo->inserts());
    if (responses->size() > responses->capacity() ||
        memo->capacity() != kVerdictMemoSlots) {
      std::fprintf(stderr, "FAIL: cache exceeded its memory bound\n");
      return 2;
    }
  }

  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  const double hit_rate =
      static_cast<double>(warm.cache_hits) /
      static_cast<double>(trace.size());
  std::printf("series,mode,seconds,cache_hits,digest\n");
  std::printf("response_cache,nocache,%.4f,0,%016llx\n", baseline.seconds,
              static_cast<unsigned long long>(baseline.digest));
  std::printf("response_cache,cold,%.4f,%zu,%016llx\n", cold.seconds,
              cold.cache_hits,
              static_cast<unsigned long long>(cold.digest));
  std::printf("response_cache,warm,%.4f,%zu,%016llx\n", warm.seconds,
              warm.cache_hits,
              static_cast<unsigned long long>(warm.digest));
  std::printf("series,warm_speedup_x,warm_hit_rate,entries,memo_inserts\n");
  std::printf("response_cache_summary,%.2f,%.3f,%zu,%llu\n", speedup,
              hit_rate, cache_entries,
              static_cast<unsigned long long>(memo_inserts));

  const bool invariant =
      baseline.digest == cold.digest && baseline.digest == warm.digest;
  const bool all_hits = warm.cache_hits == trace.size();
  if (!invariant) {
    std::fprintf(stderr,
                 "FAIL: caching changed response payloads "
                 "(nocache=%016llx cold=%016llx warm=%016llx)\n",
                 static_cast<unsigned long long>(baseline.digest),
                 static_cast<unsigned long long>(cold.digest),
                 static_cast<unsigned long long>(warm.digest));
  }
  if (!all_hits) {
    std::fprintf(stderr, "FAIL: warm pass hit %zu/%zu requests\n",
                 warm.cache_hits, trace.size());
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_response_cache\",\n");
    std::fprintf(f,
                 "  \"note\": \"one trace replayed caches-off, cold and "
                 "warm (fresh service sharing the populated caches), "
                 "min-of-%d runs per mode. All three digests must match "
                 "and every warm request must be a response-cache "
                 "hit.\",\n",
                 kRepeats);
    std::fprintf(f, "  \"db_objects\": %zu,\n", db->size());
    std::fprintf(f, "  \"requests\": %zu,\n", trace.size());
    std::fprintf(f, "  \"response_cache_capacity\": %zu,\n",
                 kResponseCacheCapacity);
    std::fprintf(f, "  \"verdict_memo_slots\": %zu,\n",
                 static_cast<size_t>(kVerdictMemoSlots));
    std::fprintf(f, "  \"payload_invariant\": %s,\n",
                 invariant ? "true" : "false");
    std::fprintf(f, "  \"warm_all_hits\": %s,\n",
                 all_hits ? "true" : "false");
    std::fprintf(f, "  \"response_digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(baseline.digest));
    std::fprintf(f, "  \"cache_entries\": %zu,\n", cache_entries);
    std::fprintf(f, "  \"memo_inserts\": %llu,\n",
                 static_cast<unsigned long long>(memo_inserts));
    std::fprintf(f, "  \"warm_hit_rate\": %.3f,\n", hit_rate);
    std::fprintf(f, "  \"warm_speedup_x\": %.2f,\n", speedup);
    std::fprintf(
        f,
        "  \"series\": [\n"
        "    {\"mode\": \"nocache\", \"seconds\": %.4f},\n"
        "    {\"mode\": \"cold\", \"seconds\": %.4f},\n"
        "    {\"mode\": \"warm\", \"seconds\": %.4f}\n  ]\n}\n",
        baseline.seconds, cold.seconds, warm.seconds);
    std::fclose(f);
  }
  return invariant && all_hits ? 0 : 2;
}
