// Copyright 2026 The updb Authors.
// Shared helpers for the experiment harness. Every binary reproduces one
// figure of the paper's evaluation (Section VII) and prints its series as
// CSV to stdout.
//
// Scaling: binaries whose cost is dominated by the Monte-Carlo comparison
// partner default to a scaled-down database so the whole suite finishes in
// minutes; UPDB_BENCH_SCALE (a multiplier, default 1.0) scales object and
// sample counts back up (e.g. UPDB_BENCH_SCALE=5 restores the paper's
// 10,000-object setups where a binary defaults to 2,000).

#ifndef UPDB_BENCH_BENCH_UTIL_H_
#define UPDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace updb {
namespace bench {

/// Multiplier from the UPDB_BENCH_SCALE environment variable (default 1).
inline double ScaleEnv() {
  const char* env = std::getenv("UPDB_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// base * ScaleEnv(), rounded, at least `min_value`.
inline size_t Scaled(size_t base, size_t min_value = 1) {
  const double v = static_cast<double>(base) * ScaleEnv();
  const size_t out = static_cast<size_t>(v + 0.5);
  return out < min_value ? min_value : out;
}

/// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment_id, const char* description) {
  std::printf("# %s — %s\n", experiment_id, description);
  std::printf("# UPDB_BENCH_SCALE=%.3g\n", ScaleEnv());
}

}  // namespace bench
}  // namespace updb

#endif  // UPDB_BENCH_BENCH_UTIL_H_
