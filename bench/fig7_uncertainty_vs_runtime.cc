// Figure 7: average uncertainty of an influence object's PDom bracket as a
// function of IDCA's runtime expressed as a fraction of the MC runtime,
// for sample sizes 100 / 500 / 1000 per object, on (a) synthetic and (b)
// IIP-like data. The paper's finding: the first iterations cut the
// uncertainty steeply at a tiny fraction of MC's cost; squeezing out the
// last uncertainty approaches (and occasionally beats) MC's cost.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

namespace {

void RunDataset(const char* label, const updb::UncertainDatabase& db,
                double query_extent, size_t samples) {
  using namespace updb;
  const RTree index = BuildRTree(db.objects());

  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = samples;
  mc_cfg.reference_samples = samples / 10;
  MonteCarloEngine mc(db, mc_cfg);

  IdcaConfig config;
  config.max_iterations = 6;
  config.uncertainty_epsilon = -1.0;  // run all iterations
  IdcaEngine engine(db, config);

  const size_t num_queries = 2;
  Rng rng(2024 + samples);
  for (size_t q = 0; q < num_queries; ++q) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    const auto r = workload::MakeQueryObject(
        center, query_extent, workload::ObjectModel::kDiscrete, samples, rng);
    const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
    const double mc_seconds = mc.DomCountPdf(b, *r).seconds;
    const IdcaResult result = engine.ComputeDomCount(b, *r);
    for (const IdcaIterationStats& s : result.iterations) {
      std::printf("%s,%zu,%zu,%d,%.4f,%.4f\n", label, samples, q,
                  s.iteration,
                  mc_seconds > 0 ? s.cumulative_seconds / mc_seconds : 0.0,
                  s.avg_influence_uncertainty);
    }
  }
}

}  // namespace

int main() {
  using namespace updb;
  bench::PrintBanner("fig7",
                     "avg influence-object uncertainty vs fraction of MC "
                     "runtime (paper: Fig. 7a/7b)");
  std::printf(
      "dataset,samples,query,iteration,fraction_of_mc_runtime,"
      "avg_uncertainty\n");

  for (size_t samples : {100u, 500u, 1000u}) {
    workload::SyntheticConfig syn;
    syn.num_objects = bench::Scaled(1000);  // paper: 10,000
    syn.max_extent = 0.004;
    syn.model = workload::ObjectModel::kDiscrete;
    syn.samples_per_object = samples;
    RunDataset("synthetic", workload::MakeSyntheticDatabase(syn),
               syn.max_extent, samples);

    workload::IipConfig iip;
    iip.num_objects = bench::Scaled(1500);  // paper: 6,216
    iip.model = workload::ObjectModel::kDiscrete;
    iip.samples_per_object = samples;
    RunDataset("iip", workload::MakeIipLikeDataset(iip), iip.max_extent,
               samples);
  }
  return 0;
}
