// Figure 6(a): number of candidates remaining after the spatial
// complete-domination filter, Optimal criterion vs. MinMax, as a function
// of the maximum object extent. The paper reports the optimal criterion
// pruning ~20% more candidates across the extent range 0..0.01.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner(
      "fig6a", "candidates after spatial pruning, Optimal vs MinMax "
               "(paper: Fig. 6a)");

  const size_t num_objects = bench::Scaled(10000);  // paper scale
  const size_t num_queries = 30;                    // paper: 100

  std::printf("max_extent,optimal_candidates,minmax_candidates\n");
  for (double max_extent :
       {0.001, 0.002, 0.004, 0.006, 0.008, 0.010}) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = num_objects;
    cfg.max_extent = max_extent;
    const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
    const RTree index = BuildRTree(db.objects());

    IdcaConfig optimal_cfg;
    optimal_cfg.criterion = DominationCriterion::kOptimal;
    optimal_cfg.max_iterations = 0;
    IdcaConfig minmax_cfg = optimal_cfg;
    minmax_cfg.criterion = DominationCriterion::kMinMax;
    IdcaEngine optimal(db, optimal_cfg);
    IdcaEngine minmax(db, minmax_cfg);

    double opt_total = 0.0, mm_total = 0.0;
    Rng rng(42);
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.NextDouble(), rng.NextDouble()};
      const auto r = workload::MakeQueryObject(
          center, max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
      opt_total += static_cast<double>(
          optimal.ComputeDomCount(b, *r).influence_count);
      mm_total += static_cast<double>(
          minmax.ComputeDomCount(b, *r).influence_count);
    }
    std::printf("%.4f,%.2f,%.2f\n", max_extent,
                opt_total / static_cast<double>(num_queries),
                mm_total / static_cast<double>(num_queries));
  }
  return 0;
}
