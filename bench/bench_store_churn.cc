// Store churn benchmark: (a) publish latency of the versioned object
// store — split into drain time (the only step holding the writer mutex)
// and build time (snapshot materialization outside it) — comparing the
// delta-overlay index, a full bulk rebuild at every publish, and a
// sharded copy-on-write store; (b) a drain-scaling series showing the
// CoW drain stays flat as the live-table size grows (the ROADMAP open
// item this closes: the old store copied the whole live map under the
// writer mutex, O(N)); and (c) query throughput of the live QueryService
// while a writer thread mutates and publishes concurrently. Built-in
// oracles: overlay and rebuilt stores fed the same mutation stream must
// serve bit-identical payloads at every version, sharded (2/7-way) and
// unsharded stores of the same history must serve bit-identical
// payloads, and two pinned replays of the same trace against the same
// snapshot_version must produce equal digests while churn continues —
// any mismatch exits 2.
//
// CSV to stdout; pass a path argument to also write the summary JSON (the
// format committed as BENCH_store_churn.json). UPDB_BENCH_SCALE scales
// database, trace and churn sizes.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "updb.h"

namespace {

using namespace updb;

struct PublishSeries {
  std::string mode;
  size_t shards = 1;
  size_t publishes = 0;
  size_t compactions = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double mean_drain_ms = 0.0;
  double max_drain_ms = 0.0;
  double mean_build_ms = 0.0;
  double max_build_ms = 0.0;
  size_t final_delta = 0;
};

/// Applies `batches` churn batches to a fresh store seeded with `db`,
/// publishing after each, and reports the publish-latency series split
/// into drain time (under the writer mutex) and build time (outside it).
PublishSeries RunPublishSeries(const UncertainDatabase& db,
                               double compact_fraction, size_t num_shards,
                               const char* mode, size_t batches,
                               size_t per_batch, uint64_t seed) {
  store::StoreOptions opts;
  opts.compact_delta_fraction = compact_fraction;
  opts.num_shards = num_shards;
  store::VersionedObjectStore s(db, opts);
  Rng rng(seed);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = per_batch;
  ccfg.max_extent = 0.01;
  PublishSeries out;
  out.mode = mode;
  out.shards = num_shards;
  double total_ms = 0.0, total_drain_ms = 0.0, total_build_ms = 0.0;
  for (size_t b = 0; b < batches; ++b) {
    workload::ApplyMutationBatch(
        s, workload::MakeMutationBatch(s.LiveIds(), 2, ccfg, rng));
    Stopwatch timer;
    store::PublishStats stats;
    const auto snap = s.Publish(&stats);
    const double ms = timer.ElapsedMillis();
    total_ms += ms;
    total_drain_ms += stats.drain_ms;
    total_build_ms += stats.build_ms;
    out.max_ms = std::max(out.max_ms, ms);
    out.max_drain_ms = std::max(out.max_drain_ms, stats.drain_ms);
    out.max_build_ms = std::max(out.max_build_ms, stats.build_ms);
    ++out.publishes;
    if (snap->index().compacted()) ++out.compactions;
    out.final_delta = snap->index().delta_entries();
  }
  const double n = static_cast<double>(out.publishes);
  out.mean_ms = total_ms / n;
  out.mean_drain_ms = total_drain_ms / n;
  out.mean_build_ms = total_build_ms / n;
  return out;
}

/// One size-stationary churn batch: biases the insert/remove mix to keep
/// the live set near `target_size`. Open-ended writer loops must not grow
/// the database without bound while a replay drains — expected-rank
/// requests cost O(N) IDCA runs, so unbounded growth compounds into a
/// replay that never finishes.
void ApplyStationaryChurnBatch(store::VersionedObjectStore& s,
                               size_t target_size, Rng& rng) {
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = 8;
  ccfg.max_extent = 0.03;
  const size_t live = s.live_size();
  const size_t band = target_size / 4;
  if (live > target_size + band) {
    ccfg.insert_weight = 0.2;
    ccfg.remove_weight = 0.4;
  } else if (live + band < target_size) {
    ccfg.insert_weight = 0.4;
    ccfg.remove_weight = 0.2;
  } else {
    ccfg.insert_weight = 0.3;
    ccfg.remove_weight = 0.3;
  }
  workload::ApplyMutationBatch(
      s, workload::MakeMutationBatch(s.LiveIds(), 2, ccfg, rng));
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner("bench_store_churn",
                     "versioned store: publish latency + QPS under churn");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware_threads=%u\n", hw);

  // ---------------------------------------------------------------------
  // Part A — publish latency: O(delta) overlay maintenance vs full bulk
  // rebuild at every publish, on a database large enough that the rebuild
  // cost is visible.
  workload::SyntheticConfig big_cfg;
  big_cfg.num_objects = bench::Scaled(20000);
  big_cfg.max_extent = 0.004;
  big_cfg.seed = 41;
  const UncertainDatabase big_db = workload::MakeSyntheticDatabase(big_cfg);
  const size_t publish_batches = bench::Scaled(24);
  const size_t per_batch = 32;

  std::printf("series,mode,shards,publishes,compactions,mean_publish_ms,"
              "max_publish_ms,mean_drain_ms,max_drain_ms,mean_build_ms,"
              "max_build_ms,final_delta\n");
  std::vector<PublishSeries> publish_series;
  publish_series.push_back(RunPublishSeries(
      big_db, /*compact_fraction=*/0.25, /*num_shards=*/1, "overlay",
      publish_batches, per_batch, /*seed=*/51));
  publish_series.push_back(RunPublishSeries(
      big_db, /*compact_fraction=*/0.0, /*num_shards=*/1, "rebuild_always",
      publish_batches, per_batch, /*seed=*/51));
  publish_series.push_back(RunPublishSeries(
      big_db, /*compact_fraction=*/0.25, /*num_shards=*/8,
      "overlay_sharded8", publish_batches, per_batch, /*seed=*/51));
  for (const PublishSeries& s : publish_series) {
    std::printf("store_publish,%s,%zu,%zu,%zu,%.4f,%.4f,%.5f,%.5f,%.4f,"
                "%.4f,%zu\n",
                s.mode.c_str(), s.shards, s.publishes, s.compactions,
                s.mean_ms, s.max_ms, s.mean_drain_ms, s.max_drain_ms,
                s.mean_build_ms, s.max_build_ms, s.final_delta);
  }

  // ---------------------------------------------------------------------
  // Drain scaling — the ROADMAP open item: drain time (writer-mutex hold)
  // must stay flat as the live-table size grows, while build time may
  // scale with N. Fixed-size mutation batches against increasing
  // databases.
  struct DrainScalingRow {
    size_t objects = 0;
    double mean_drain_ms = 0.0;
    double mean_build_ms = 0.0;
  };
  std::vector<DrainScalingRow> drain_scaling;
  std::printf("series,objects,mean_drain_ms,mean_build_ms\n");
  for (const size_t n : {bench::Scaled(5000), bench::Scaled(10000),
                         bench::Scaled(20000)}) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = n;
    cfg.max_extent = 0.004;
    cfg.seed = 43;
    const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
    const PublishSeries s =
        RunPublishSeries(db, /*compact_fraction=*/0.25, /*num_shards=*/1,
                         "drain_scaling", bench::Scaled(12), per_batch,
                         /*seed=*/53);
    drain_scaling.push_back(
        DrainScalingRow{db.size(), s.mean_drain_ms, s.mean_build_ms});
    std::printf("drain_scaling,%zu,%.5f,%.4f\n", db.size(),
                s.mean_drain_ms, s.mean_build_ms);
  }

  // ---------------------------------------------------------------------
  // Oracle 1 — overlay vs rebuilt snapshots serve identical payloads.
  store::StoreOptions overlay_opts;
  overlay_opts.compact_delta_fraction = 10.0;  // keep the overlay forever
  store::StoreOptions rebuild_opts;
  rebuild_opts.compact_delta_fraction = 0.0;
  workload::SyntheticConfig small_cfg;
  small_cfg.num_objects = bench::Scaled(200);
  small_cfg.max_extent = 0.03;
  small_cfg.seed = 11;
  const UncertainDatabase small_db =
      workload::MakeSyntheticDatabase(small_cfg);
  store::StoreOptions sharded2_opts;
  sharded2_opts.num_shards = 2;
  store::StoreOptions sharded7_opts;
  sharded7_opts.num_shards = 7;
  store::VersionedObjectStore overlay_store(small_db, overlay_opts);
  store::VersionedObjectStore rebuild_store(small_db, rebuild_opts);
  store::VersionedObjectStore sharded2_store(small_db, sharded2_opts);
  store::VersionedObjectStore sharded7_store(small_db, sharded7_opts);
  {
    Rng rng(61);
    workload::ChurnConfig ccfg;
    ccfg.mutations_per_batch = 24;
    ccfg.max_extent = 0.03;
    for (int b = 0; b < 3; ++b) {
      const std::vector<store::Mutation> batch = workload::MakeMutationBatch(
          overlay_store.LiveIds(), 2, ccfg, rng);
      workload::ApplyMutationBatch(overlay_store, batch);
      workload::ApplyMutationBatch(rebuild_store, batch);
      workload::ApplyMutationBatch(sharded2_store, batch);
      workload::ApplyMutationBatch(sharded7_store, batch);
      overlay_store.Publish();
      rebuild_store.Publish();
      sharded2_store.Publish();
      sharded7_store.Publish();
    }
  }
  // Expected-rank requests cost one IDCA run per database object; a small
  // weight keeps the closed-loop replays in CI-smoke budget on one core.
  // Iteration budget 3: one level deeper multiplies the partition-pair
  // count ~16x on the undecided tail and blows the smoke budget of a
  // single-core CI host.
  service::TraceConfig tcfg;
  tcfg.num_requests = bench::Scaled(300);
  tcfg.seed = 23;
  tcfg.query_extent = 0.03;
  tcfg.k_max = 5;
  tcfg.expected_rank_weight = 0.05;
  tcfg.budget.max_iterations = 3;
  const std::vector<service::QueryRequest> oracle_trace =
      service::MakeTrace(*overlay_store.latest()->db(), tcfg);
  const auto pinned_digest =
      [&oracle_trace](std::shared_ptr<const store::StoreSnapshot> snap,
                      size_t workers) {
        service::QueryServiceOptions opts;
        opts.num_workers = workers;
        opts.batch_size = 8;
        opts.max_queue = oracle_trace.size();
        service::QueryService svc(std::move(snap), opts);
        return service::ResponseDigest(
            service::ReplayTrace(svc, oracle_trace, /*qps=*/0.0).responses);
      };
  const uint64_t overlay_digest =
      pinned_digest(overlay_store.latest(), /*workers=*/2);
  const uint64_t rebuild_digest =
      pinned_digest(rebuild_store.latest(), /*workers=*/2);
  const bool overlay_matches = overlay_digest == rebuild_digest;
  std::printf("series,overlay_vs_rebuild_digest\nstore_oracle,%s\n",
              overlay_matches ? "equal" : "MISMATCH");

  // Oracle 1b — sharded stores of the same mutation history serve
  // bit-identical payloads to the unsharded store, for every worker
  // count.
  const bool sharded_matches =
      pinned_digest(sharded2_store.latest(), /*workers=*/2) ==
          overlay_digest &&
      pinned_digest(sharded7_store.latest(), /*workers=*/2) ==
          overlay_digest &&
      pinned_digest(sharded7_store.latest(), /*workers=*/1) ==
          overlay_digest;
  std::printf("series,sharded_vs_unsharded_digest\nstore_shard_oracle,%s\n",
              sharded_matches ? "equal" : "MISMATCH");

  // ---------------------------------------------------------------------
  // Part B — query throughput under churn: closed-loop replay against the
  // live service while a writer publishes at full speed, vs the same
  // replay against a quiescent store.
  struct ChurnRow {
    std::string mode;
    double seconds = 0.0;
    double qps = 0.0;
    uint64_t versions_served_min = 0;
    uint64_t versions_served_max = 0;
    uint64_t publishes = 0;
  };
  std::vector<ChurnRow> churn_rows;
  for (const bool with_churn : {false, true}) {
    auto object_store =
        std::make_shared<store::VersionedObjectStore>(small_db);
    service::QueryServiceOptions opts;
    opts.num_workers = 2;
    opts.batch_size = 8;
    opts.max_queue = oracle_trace.size();
    service::QueryService svc(object_store, opts);
    std::atomic<bool> stop{false};
    std::thread writer;
    if (with_churn) {
      writer = std::thread([&object_store, &stop, target = small_db.size()] {
        Rng rng(71);
        while (!stop.load()) {
          ApplyStationaryChurnBatch(*object_store, target, rng);
          object_store->Publish();
          // Pace the writer: full-speed publishing starves the query
          // workers on single-core hosts and measures the scheduler, not
          // the store.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    Stopwatch timer;
    const service::ReplayResult result =
        service::ReplayTrace(svc, oracle_trace, /*qps=*/0.0);
    const double seconds = timer.ElapsedSeconds();
    stop.store(true);
    if (writer.joinable()) writer.join();
    ChurnRow row;
    row.mode = with_churn ? "churn" : "quiescent";
    row.seconds = seconds;
    row.qps = static_cast<double>(oracle_trace.size()) / seconds;
    row.versions_served_min = ~uint64_t{0};
    for (const service::QueryResponse& r : result.responses) {
      // Version 0 marks never-executed stubs; executed responses always
      // name a published version here (the store seeds at version 1).
      if (r.snapshot_version == 0) continue;
      row.versions_served_min =
          std::min(row.versions_served_min, r.snapshot_version);
      row.versions_served_max =
          std::max(row.versions_served_max, r.snapshot_version);
    }
    if (row.versions_served_min > row.versions_served_max) {
      row.versions_served_min = row.versions_served_max;
    }
    row.publishes = object_store->version();
    churn_rows.push_back(row);
  }
  std::printf("series,mode,seconds,throughput_qps,versions_served_min,"
              "versions_served_max,publishes\n");
  for (const ChurnRow& r : churn_rows) {
    std::printf("churn_throughput,%s,%.3f,%.2f,%llu,%llu,%llu\n",
                r.mode.c_str(), r.seconds, r.qps,
                static_cast<unsigned long long>(r.versions_served_min),
                static_cast<unsigned long long>(r.versions_served_max),
                static_cast<unsigned long long>(r.publishes));
  }

  // ---------------------------------------------------------------------
  // Oracle 2 — version-pinned determinism while churn continues: two
  // replays pinned to the same snapshot, different worker counts, under a
  // concurrently publishing writer.
  bool pinned_deterministic = false;
  {
    store::StoreOptions opts;
    opts.snapshot_retention = 4;
    auto object_store =
        std::make_shared<store::VersionedObjectStore>(small_db, opts);
    const auto pinned = object_store->latest();
    std::atomic<bool> stop{false};
    std::thread writer([&object_store, &stop, target = small_db.size()] {
      Rng rng(81);
      while (!stop.load()) {
        ApplyStationaryChurnBatch(*object_store, target, rng);
        object_store->Publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    const uint64_t digest_a = pinned_digest(pinned, /*workers=*/1);
    const uint64_t digest_b = pinned_digest(pinned, /*workers=*/4);
    stop.store(true);
    writer.join();
    pinned_deterministic = digest_a == digest_b;
    std::printf("series,pinned_replay_digest\nstore_determinism,%s\n",
                pinned_deterministic ? "equal" : "MISMATCH");
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_store_churn\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f,
                 "  \"note\": \"publish series: %zu-object database, %zu "
                 "publishes of %zu-mutation batches; overlay uses "
                 "compact_delta_fraction 0.25, rebuild_always forces a "
                 "full STR bulk build per publish, overlay_sharded8 "
                 "shards the CoW store 8 ways. drain_ms is the time the "
                 "publish held the writer mutex (the CoW drain, O(delta)); "
                 "build_ms is snapshot materialization outside it. The "
                 "drain_scaling series shows mean drain flat vs live-table "
                 "size while build grows. Throughput rows replay the same "
                 "closed-loop trace against a quiescent store and against "
                 "one whose writer publishes continuously (2 ms pacing, "
                 "size-stationary mutation mix). Oracles: "
                 "overlay-vs-rebuilt digests equal, sharded(2/7)-vs-"
                 "unsharded digests equal, pinned replays under churn "
                 "equal.\",\n",
                 big_db.size(), publish_batches, per_batch);
    std::fprintf(f, "  \"publish_db_objects\": %zu,\n", big_db.size());
    std::fprintf(f, "  \"churn_db_objects\": %zu,\n", small_db.size());
    std::fprintf(f, "  \"requests\": %zu,\n", oracle_trace.size());
    std::fprintf(f, "  \"overlay_matches_rebuild\": %s,\n",
                 overlay_matches ? "true" : "false");
    std::fprintf(f, "  \"sharded_matches_unsharded\": %s,\n",
                 sharded_matches ? "true" : "false");
    std::fprintf(f, "  \"pinned_replay_deterministic\": %s,\n",
                 pinned_deterministic ? "true" : "false");
    std::fprintf(f, "  \"publish_series\": [\n");
    for (size_t i = 0; i < publish_series.size(); ++i) {
      const PublishSeries& s = publish_series[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"shards\": %zu, "
                   "\"publishes\": %zu, \"compactions\": %zu, "
                   "\"mean_publish_ms\": %.4f, \"max_publish_ms\": %.4f, "
                   "\"mean_drain_ms\": %.5f, \"max_drain_ms\": %.5f, "
                   "\"mean_build_ms\": %.4f, \"max_build_ms\": %.4f, "
                   "\"final_delta\": %zu}%s\n",
                   s.mode.c_str(), s.shards, s.publishes, s.compactions,
                   s.mean_ms, s.max_ms, s.mean_drain_ms, s.max_drain_ms,
                   s.mean_build_ms, s.max_build_ms, s.final_delta,
                   i + 1 < publish_series.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"drain_scaling\": [\n");
    for (size_t i = 0; i < drain_scaling.size(); ++i) {
      const DrainScalingRow& r = drain_scaling[i];
      std::fprintf(f,
                   "    {\"objects\": %zu, \"mean_drain_ms\": %.5f, "
                   "\"mean_build_ms\": %.4f}%s\n",
                   r.objects, r.mean_drain_ms, r.mean_build_ms,
                   i + 1 < drain_scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"churn_series\": [\n");
    for (size_t i = 0; i < churn_rows.size(); ++i) {
      const ChurnRow& r = churn_rows[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"seconds\": %.3f, "
                   "\"throughput_qps\": %.2f, \"versions_served\": [%llu, "
                   "%llu], \"publishes\": %llu}%s\n",
                   r.mode.c_str(), r.seconds, r.qps,
                   static_cast<unsigned long long>(r.versions_served_min),
                   static_cast<unsigned long long>(r.versions_served_max),
                   static_cast<unsigned long long>(r.publishes),
                   i + 1 < churn_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return overlay_matches && sharded_matches && pinned_deterministic ? 0 : 2;
}
