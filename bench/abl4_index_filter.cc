// Ablation 4: R-tree-backed complete-domination filter vs. the linear
// database scan (the paper's "integrate into index supported algorithms"
// future work, implemented here). Measures the filter phase alone
// (max_iterations = 0) across database sizes.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("abl4",
                     "index-backed vs linear complete-domination filter "
                     "(future-work extension)");

  const size_t num_queries = 20;
  std::printf("db_size,scan_sec,index_sec,speedup,influence_objects\n");
  for (size_t base_n : {20000u, 40000u, 80000u, 160000u}) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = bench::Scaled(base_n);
    cfg.max_extent = 0.002;
    const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
    const RTree index = BuildRTree(db.objects());

    IdcaConfig scan_cfg;
    scan_cfg.max_iterations = 0;
    scan_cfg.collect_stats = false;
    IdcaConfig index_cfg = scan_cfg;
    index_cfg.use_index_filter = true;
    IdcaEngine scan(db, scan_cfg);
    IdcaEngine indexed(db, &index, index_cfg);

    double scan_sec = 0.0, index_sec = 0.0, influence = 0.0;
    Rng rng(77);
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.NextDouble(), rng.NextDouble()};
      const auto r = workload::MakeQueryObject(
          center, cfg.max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
      Stopwatch sw1;
      const IdcaResult a = scan.ComputeDomCount(b, *r);
      scan_sec += sw1.ElapsedSeconds();
      Stopwatch sw2;
      const IdcaResult c = indexed.ComputeDomCount(b, *r);
      index_sec += sw2.ElapsedSeconds();
      if (a.influence_count != c.influence_count ||
          a.complete_domination_count != c.complete_domination_count) {
        std::printf("MISMATCH at n=%zu q=%zu\n", cfg.num_objects, q);
        return 1;
      }
      influence += static_cast<double>(a.influence_count);
    }
    std::printf("%zu,%.6f,%.6f,%.1fx,%.1f\n", cfg.num_objects,
                scan_sec / num_queries, index_sec / num_queries,
                scan_sec / index_sec, influence / num_queries);
  }
  return 0;
}
