// Durability benchmark: (a) publish latency of the versioned object
// store under churn, comparing the in-memory store with durable stores at
// each WAL fsync policy (never / every_publish / every_batch) — the cost
// of crash safety in the publish path; (b) recovery time as a function of
// the WAL tail length behind the newest checkpoint — replaying a longer
// tail must scale linearly, and the checkpoint must keep restart time
// bounded regardless of total history; (c) a digest oracle: a durable
// store is run, "crashed" (abandoned), recovered from disk, and the
// recovered latest snapshot must serve payloads bit-identical to the
// original's — any mismatch exits 2.
//
// CSV to stdout; pass a path argument to also write the summary JSON (the
// format committed as BENCH_store_recovery.json). UPDB_BENCH_SCALE scales
// database and churn sizes.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "updb.h"

namespace {

using namespace updb;

std::string FreshWalDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("updb_bench_recovery_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

uint64_t WalBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& it : std::filesystem::directory_iterator(dir)) {
    size_t shard = 0;
    if (store::ParseWalShardFileName(it.path().filename().string(), &shard)) {
      total += static_cast<uint64_t>(std::filesystem::file_size(it.path()));
    }
  }
  return total;
}

struct PolicyRow {
  std::string mode;
  size_t publishes = 0;
  double mean_publish_ms = 0.0;
  double max_publish_ms = 0.0;
  double wall_seconds = 0.0;
  uint64_t wal_bytes = 0;
};

/// Churns a store (in-memory when `wal_dir` is empty, durable otherwise)
/// and reports the publish-latency series.
PolicyRow RunPolicy(const UncertainDatabase& db, const std::string& mode,
                    const std::string& wal_dir, store::FsyncPolicy fsync,
                    size_t batches, size_t per_batch) {
  store::StoreOptions opts;
  opts.num_shards = 2;
  std::unique_ptr<store::VersionedObjectStore> owned;
  if (!wal_dir.empty()) {
    opts.durability.wal_dir = wal_dir;
    opts.durability.fsync = fsync;
    opts.durability.checkpoint_every = 8;
    StatusOr<std::unique_ptr<store::VersionedObjectStore>> opened =
        store::VersionedObjectStore::Open(db, opts);
    UPDB_CHECK(opened.ok());
    owned = std::move(opened).value();
  } else {
    owned = std::make_unique<store::VersionedObjectStore>(db, opts);
  }
  store::VersionedObjectStore& s = *owned;

  Rng rng(77);
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = per_batch;
  ccfg.max_extent = 0.01;
  PolicyRow row;
  row.mode = mode;
  Stopwatch wall;
  double total_ms = 0.0;
  for (size_t b = 0; b < batches; ++b) {
    UPDB_CHECK(workload::ApplyMutationBatch(
                   s, workload::MakeMutationBatch(s.LiveIds(), 2, ccfg, rng))
                   .ok());
    Stopwatch timer;
    s.Publish();
    const double ms = timer.ElapsedMillis();
    total_ms += ms;
    row.max_publish_ms = std::max(row.max_publish_ms, ms);
    ++row.publishes;
  }
  row.wall_seconds = wall.ElapsedSeconds();
  row.mean_publish_ms = total_ms / static_cast<double>(row.publishes);
  if (!wal_dir.empty()) {
    UPDB_CHECK(s.wal_status().ok());
    row.wal_bytes = WalBytes(wal_dir);
  }
  return row;
}

uint64_t SnapshotDigest(std::shared_ptr<const store::StoreSnapshot> snap) {
  service::TraceConfig tcfg;
  tcfg.num_requests = bench::Scaled(60);
  tcfg.seed = 29;
  tcfg.query_extent = 0.03;
  tcfg.k_max = 5;
  tcfg.budget.max_iterations = 3;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*snap->db(), tcfg);
  service::QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.batch_size = 8;
  opts.max_queue = trace.size();
  service::QueryService svc(std::move(snap), opts);
  return service::ResponseDigest(
      service::ReplayTrace(svc, trace, /*qps=*/0.0).responses);
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner("bench_store_recovery",
                     "durable store: fsync-policy cost + recovery scaling");

  workload::SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(2000);
  cfg.max_extent = 0.01;
  cfg.seed = 47;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const size_t batches = bench::Scaled(24);
  const size_t per_batch = 32;

  // ---------------------------------------------------------------------
  // Part A — publish latency per fsync policy, against the in-memory
  // store as baseline.
  std::vector<PolicyRow> policy_rows;
  policy_rows.push_back(RunPolicy(db, "in_memory", "",
                                  store::FsyncPolicy::kNever, batches,
                                  per_batch));
  for (const store::FsyncPolicy policy :
       {store::FsyncPolicy::kNever, store::FsyncPolicy::kEveryPublish,
        store::FsyncPolicy::kEveryBatch}) {
    const std::string mode =
        std::string("wal_") + store::FsyncPolicyName(policy);
    policy_rows.push_back(RunPolicy(db, mode, FreshWalDir(mode), policy,
                                    batches, per_batch));
  }
  std::printf("series,mode,publishes,mean_publish_ms,max_publish_ms,"
              "wall_seconds,wal_bytes\n");
  for (const PolicyRow& r : policy_rows) {
    std::printf("fsync_policy,%s,%zu,%.4f,%.4f,%.3f,%llu\n", r.mode.c_str(),
                r.publishes, r.mean_publish_ms, r.max_publish_ms,
                r.wall_seconds,
                static_cast<unsigned long long>(r.wal_bytes));
  }

  // ---------------------------------------------------------------------
  // Part B — recovery time vs WAL tail length. checkpoint_every is set
  // beyond the run length, so the whole history after the attach-time
  // checkpoint is tail replay; the tail grows with the batch count.
  struct RecoveryRow {
    size_t batches = 0;
    uint64_t wal_bytes = 0;
    uint64_t replayed_records = 0;
    double recover_ms = 0.0;
    uint64_t recovered_version = 0;
  };
  std::vector<RecoveryRow> recovery_rows;
  std::printf("series,batches,wal_bytes,replayed_records,recover_ms,"
              "recovered_version\n");
  for (const size_t tail_batches :
       {bench::Scaled(4), bench::Scaled(12), bench::Scaled(36)}) {
    const std::string dir =
        FreshWalDir("tail_" + std::to_string(tail_batches));
    store::StoreOptions opts;
    opts.num_shards = 2;
    opts.durability.wal_dir = dir;
    opts.durability.fsync = store::FsyncPolicy::kNever;
    opts.durability.checkpoint_every = tail_batches + 1;
    {
      StatusOr<std::unique_ptr<store::VersionedObjectStore>> victim =
          store::VersionedObjectStore::Open(db, opts);
      UPDB_CHECK(victim.ok());
      Rng rng(78);
      workload::ChurnConfig ccfg;
      ccfg.mutations_per_batch = per_batch;
      ccfg.max_extent = 0.01;
      for (size_t b = 0; b < tail_batches; ++b) {
        UPDB_CHECK(workload::ApplyMutationBatch(
                       **victim, workload::MakeMutationBatch(
                                     (*victim)->LiveIds(), 2, ccfg, rng))
                       .ok());
        (*victim)->Publish();
      }
      UPDB_CHECK((*victim)->wal_status().ok());
    }  // crash
    store::RecoveryReport report;
    Stopwatch timer;
    StatusOr<std::unique_ptr<store::VersionedObjectStore>> recovered =
        store::RecoverStore(dir, store::StoreOptions{}, &report);
    const double recover_ms = timer.ElapsedMillis();
    UPDB_CHECK(recovered.ok());
    RecoveryRow row;
    row.batches = tail_batches;
    row.wal_bytes = WalBytes(dir);
    row.replayed_records =
        report.replayed_mutations + report.replayed_publishes;
    row.recover_ms = recover_ms;
    row.recovered_version = report.recovered_version;
    recovery_rows.push_back(row);
    std::printf("recovery_scaling,%zu,%llu,%llu,%.3f,%llu\n", row.batches,
                static_cast<unsigned long long>(row.wal_bytes),
                static_cast<unsigned long long>(row.replayed_records),
                row.recover_ms,
                static_cast<unsigned long long>(row.recovered_version));
    std::filesystem::remove_all(dir);
  }

  // ---------------------------------------------------------------------
  // Oracle — the recovered store serves payloads bit-identical to the
  // crashed original's.
  bool digests_equal = false;
  {
    const std::string dir = FreshWalDir("oracle");
    store::StoreOptions opts;
    opts.num_shards = 2;
    opts.durability.wal_dir = dir;
    opts.durability.fsync = store::FsyncPolicy::kEveryPublish;
    opts.durability.checkpoint_every = 3;
    uint64_t original_digest = 0;
    uint64_t original_version = 0;
    {
      StatusOr<std::unique_ptr<store::VersionedObjectStore>> victim =
          store::VersionedObjectStore::Open(db, opts);
      UPDB_CHECK(victim.ok());
      Rng rng(79);
      workload::ChurnConfig ccfg;
      ccfg.mutations_per_batch = per_batch;
      ccfg.max_extent = 0.01;
      for (size_t b = 0; b < 7; ++b) {
        UPDB_CHECK(workload::ApplyMutationBatch(
                       **victim, workload::MakeMutationBatch(
                                     (*victim)->LiveIds(), 2, ccfg, rng))
                       .ok());
        (*victim)->Publish();
      }
      original_digest = SnapshotDigest((*victim)->latest());
      original_version = (*victim)->version();
    }  // crash
    store::RecoveryReport report;
    StatusOr<std::unique_ptr<store::VersionedObjectStore>> recovered =
        store::RecoverStore(dir, store::StoreOptions{}, &report);
    UPDB_CHECK(recovered.ok());
    digests_equal = !report.data_loss &&
                    (*recovered)->version() == original_version &&
                    SnapshotDigest((*recovered)->latest()) == original_digest;
    std::printf("series,recovered_vs_original_digest\nrecovery_oracle,%s\n",
                digests_equal ? "equal" : "MISMATCH");
    std::filesystem::remove_all(dir);
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_store_recovery\",\n");
    std::fprintf(f,
                 "  \"note\": \"fsync_policy series: %zu-object database, "
                 "%zu publishes of %zu-mutation batches on a 2-shard "
                 "store; in_memory is the non-durable baseline, the wal_* "
                 "rows append every mutation to per-shard CRC32C WAL "
                 "segments and differ only in flush policy (never = "
                 "OS-buffered, every_publish = fsync dirty segments per "
                 "publish, every_batch = additionally fsync per mutation "
                 "batch; checkpoints every 8 publishes). recovery_scaling "
                 "re-opens crashed stores whose entire history is WAL "
                 "tail (no covering checkpoint): recover_ms must grow "
                 "linearly in replayed_records. Oracle: the recovered "
                 "latest snapshot serves a query trace digest-identical "
                 "to the crashed original's (exit 2 on mismatch).\",\n",
                 db.size(), batches, per_batch);
    std::fprintf(f, "  \"db_objects\": %zu,\n", db.size());
    std::fprintf(f, "  \"recovered_matches_original\": %s,\n",
                 digests_equal ? "true" : "false");
    std::fprintf(f, "  \"fsync_policies\": [\n");
    for (size_t i = 0; i < policy_rows.size(); ++i) {
      const PolicyRow& r = policy_rows[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"publishes\": %zu, "
                   "\"mean_publish_ms\": %.4f, \"max_publish_ms\": %.4f, "
                   "\"wall_seconds\": %.3f, \"wal_bytes\": %llu}%s\n",
                   r.mode.c_str(), r.publishes, r.mean_publish_ms,
                   r.max_publish_ms, r.wall_seconds,
                   static_cast<unsigned long long>(r.wal_bytes),
                   i + 1 < policy_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"recovery_scaling\": [\n");
    for (size_t i = 0; i < recovery_rows.size(); ++i) {
      const RecoveryRow& r = recovery_rows[i];
      std::fprintf(f,
                   "    {\"batches\": %zu, \"wal_bytes\": %llu, "
                   "\"replayed_records\": %llu, \"recover_ms\": %.3f, "
                   "\"recovered_version\": %llu}%s\n",
                   r.batches, static_cast<unsigned long long>(r.wal_bytes),
                   static_cast<unsigned long long>(r.replayed_records),
                   r.recover_ms,
                   static_cast<unsigned long long>(r.recovered_version),
                   i + 1 < recovery_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return digests_equal ? 0 : 2;
}
