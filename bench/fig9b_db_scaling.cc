// Figure 9(b): IDCA runtime per iteration for database sizes 20,000 to
// 100,000 objects (max extent 0.002). The paper's finding: the iterative
// refinement cost is governed by the influence objects, not the database
// size, so runtime grows only mildly with N (the filter scan is linear
// but cheap).

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("fig9b",
                     "runtime per iteration vs database size (paper: Fig. "
                     "9b)");

  const size_t num_queries = 3;
  const int max_iterations = 4;

  std::printf("db_size,avg_influence_objects,iteration,cumulative_runtime_sec\n");
  for (size_t base_n : {20000u, 40000u, 60000u, 80000u, 100000u}) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = bench::Scaled(base_n);
    cfg.max_extent = 0.002;
    const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
    const RTree index = BuildRTree(db.objects());

    IdcaConfig config;
    config.max_iterations = max_iterations;
    config.uncertainty_epsilon = -1.0;
    IdcaEngine engine(db, config);

    double influence_total = 0.0;
    std::vector<double> cumulative(max_iterations + 1, 0.0);
    std::vector<size_t> counts(max_iterations + 1, 0);
    Rng rng(900);
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.NextDouble(), rng.NextDouble()};
      const auto r = workload::MakeQueryObject(
          center, cfg.max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
      const IdcaResult result = engine.ComputeDomCount(b, *r);
      influence_total += static_cast<double>(result.influence_count);
      for (const IdcaIterationStats& s : result.iterations) {
        cumulative[s.iteration] += s.cumulative_seconds;
        ++counts[s.iteration];
      }
    }
    for (int it = 0; it <= max_iterations; ++it) {
      if (counts[it] == 0) continue;
      std::printf("%zu,%.1f,%d,%.6f\n", cfg.num_objects,
                  influence_total / static_cast<double>(num_queries), it,
                  cumulative[it] / static_cast<double>(counts[it]));
    }
  }
  return 0;
}
