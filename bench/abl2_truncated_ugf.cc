// Ablation 2: the k-truncated UGF (Section VI) vs. the full expansion.
// Confirms the O(k^2 C) vs O(C^3) cost separation and that both return
// identical P(DomCount < k) brackets.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("abl2",
                     "k-truncated UGF vs full expansion (Section VI "
                     "optimization)");

  const size_t repeats = 20;
  std::printf("candidates,k,full_sec,truncated_sec,speedup,max_bound_diff\n");
  for (size_t c : {50u, 100u, 200u, 400u}) {
    for (size_t k : {5u, 10u, 25u}) {
      Rng rng(c * 131 + k);
      std::vector<double> lbs(c), ubs(c);
      for (size_t i = 0; i < c; ++i) {
        lbs[i] = rng.NextDouble() * 0.5;
        ubs[i] = lbs[i] + 0.5 * rng.NextDouble();
      }
      double full_sec = 0.0, trunc_sec = 0.0, max_diff = 0.0;
      for (size_t rep = 0; rep < repeats; ++rep) {
        Stopwatch sw1;
        UncertainGeneratingFunction full;
        for (size_t i = 0; i < c; ++i) full.Multiply(lbs[i], ubs[i]);
        const ProbabilityBounds pf = full.ProbLessThan(k);
        full_sec += sw1.ElapsedSeconds();

        Stopwatch sw2;
        UncertainGeneratingFunction trunc(k);
        for (size_t i = 0; i < c; ++i) trunc.Multiply(lbs[i], ubs[i]);
        const ProbabilityBounds pt = trunc.ProbLessThan(k);
        trunc_sec += sw2.ElapsedSeconds();

        max_diff = std::max(
            max_diff, std::max(std::abs(pf.lb - pt.lb),
                               std::abs(pf.ub - pt.ub)));
      }
      std::printf("%zu,%zu,%.6f,%.6f,%.1fx,%.2e\n", c, k,
                  full_sec / repeats, trunc_sec / repeats,
                  full_sec / trunc_sec, max_diff);
    }
  }
  return 0;
}
