// Observability overhead benchmark: the same closed-loop service workload
// executed four ways — observability off (null recorder, private
// registry), metrics only, metrics + full span tracing, and metrics +
// audit log + a live admin server being scraped concurrently — with two
// built-in oracles:
//
//  * digest oracle: all four configurations must produce bit-identical
//    response payloads (observability is payload-invariant, even while
//    /metrics and /requestz are served mid-run), or exit 2;
//  * overhead oracle: the instrumented runs must stay within
//    kMaxOverhead x the baseline wall time (min-of-3 runs each, so a
//    single scheduler hiccup doesn't fail the bound), or exit 2.
//
// CSV to stdout; pass a path to also write the summary JSON committed as
// BENCH_obs_overhead.json. UPDB_BENCH_SCALE scales the workload.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "updb.h"

namespace {

using namespace updb;

/// The instrumented run must finish within this factor of the baseline.
/// The budget is deliberately loose — the point is to catch a pathological
/// regression (an accidental mutex or per-pair span on the hot path),
/// not to flake on machine noise.
constexpr double kMaxOverhead = 2.0;

struct RunResult {
  double seconds = 0.0;
  uint64_t digest = 0;
  size_t trace_events = 0;
};

/// One closed-loop replay: the whole trace is admitted while paused, then
/// timed from Resume() to Flush(). min-of-`repeats` wall time; the digest
/// must be identical across repeats (it is checked across modes anyway).
RunResult RunOnce(const std::shared_ptr<const UncertainDatabase>& db,
                  const std::vector<service::QueryRequest>& trace,
                  obs::MetricsRegistry* registry, obs::TraceRecorder* tracer,
                  obs::RequestAuditLog* audit, int repeats) {
  RunResult out;
  out.seconds = 1e100;
  for (int rep = 0; rep < repeats; ++rep) {
    service::QueryServiceOptions opts;
    opts.num_workers = 2;
    opts.batch_size = 8;
    opts.max_queue = trace.size();
    opts.start_paused = true;
    opts.metrics_registry = registry;
    opts.trace = tracer;
    opts.audit_log = audit;
    service::QueryService svc(db, opts);
    std::vector<uint64_t> tickets;
    tickets.reserve(trace.size());
    for (const service::QueryRequest& req : trace) {
      const StatusOr<uint64_t> ticket = svc.Submit(req);
      if (!ticket.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     ticket.status().ToString().c_str());
        std::exit(1);
      }
      tickets.push_back(*ticket);
    }
    Stopwatch timer;
    svc.Resume();
    svc.Flush();
    out.seconds = std::min(out.seconds, timer.ElapsedSeconds());
    std::vector<service::QueryResponse> responses;
    responses.reserve(tickets.size());
    for (uint64_t t : tickets) responses.push_back(svc.Take(t));
    out.digest = service::ResponseDigest(
        std::span<const service::QueryResponse>(responses));
  }
  if (tracer != nullptr) out.trace_events = tracer->size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintBanner("bench_obs_overhead",
                     "payload invariance + overhead bound of the "
                     "observability layer");

  workload::SyntheticConfig dbcfg;
  dbcfg.num_objects = bench::Scaled(300);
  dbcfg.max_extent = 0.03;
  dbcfg.seed = 11;
  const auto db = std::make_shared<const UncertainDatabase>(
      workload::MakeSyntheticDatabase(dbcfg));

  service::TraceConfig tcfg;
  tcfg.num_requests = bench::Scaled(80);
  tcfg.seed = 23;
  tcfg.query_extent = 0.03;
  tcfg.k_max = 6;
  tcfg.budget.max_iterations = 4;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(*db, tcfg);

  constexpr int kRepeats = 3;
  const RunResult off =
      RunOnce(db, trace, nullptr, nullptr, nullptr, kRepeats);

  obs::MetricsRegistry metrics_registry;
  const RunResult metrics =
      RunOnce(db, trace, &metrics_registry, nullptr, nullptr, kRepeats);

  obs::MetricsRegistry full_registry;
  obs::TraceRecorder recorder;
  const RunResult full =
      RunOnce(db, trace, &full_registry, &recorder, nullptr, kRepeats);

  // Mode four: audit log on and a live admin server scraped throughout
  // the run — the worst case the introspection plane can inflict on the
  // serving path (ring writes per completion plus concurrent /metrics
  // and /requestz rendering on the admin thread).
  obs::MetricsRegistry admin_registry;
  obs::AuditLogOptions audit_opts;
  audit_opts.slow_threshold_seconds = 0.0;  // record every completion
  audit_opts.registry = &admin_registry;
  obs::RequestAuditLog audit(audit_opts);
  obs::AdminServerOptions admin_opts;
  admin_opts.registry = &admin_registry;
  admin_opts.audit_log = &audit;
  admin_opts.build_info = "bench_obs_overhead";
  obs::AdminServer admin(admin_opts);
  std::atomic<bool> scraping{true};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (admin.Start().ok()) {
    scraper = std::thread([&admin, &scraping, &scrapes] {
      while (scraping.load(std::memory_order_acquire)) {
        if (net::HttpGet(admin.port(), "/metrics").ok() &&
            net::HttpGet(admin.port(), "/requestz").ok()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  const RunResult admin_run =
      RunOnce(db, trace, &admin_registry, nullptr, &audit, kRepeats);
  scraping.store(false, std::memory_order_release);
  if (scraper.joinable()) scraper.join();
  admin.Stop();

  const double metrics_overhead = metrics.seconds / off.seconds;
  const double full_overhead = full.seconds / off.seconds;
  const double admin_overhead = admin_run.seconds / off.seconds;
  std::printf("series,mode,seconds,overhead_x,trace_events,digest\n");
  std::printf("obs_overhead,off,%.4f,1.00,0,%016llx\n", off.seconds,
              static_cast<unsigned long long>(off.digest));
  std::printf("obs_overhead,metrics,%.4f,%.2f,0,%016llx\n", metrics.seconds,
              metrics_overhead,
              static_cast<unsigned long long>(metrics.digest));
  std::printf("obs_overhead,metrics+trace,%.4f,%.2f,%zu,%016llx\n",
              full.seconds, full_overhead, full.trace_events,
              static_cast<unsigned long long>(full.digest));
  std::printf("obs_overhead,metrics+admin,%.4f,%.2f,0,%016llx\n",
              admin_run.seconds, admin_overhead,
              static_cast<unsigned long long>(admin_run.digest));
  std::printf("series,audited,scrapes_during_run\n"
              "obs_admin,%llu,%llu\n",
              static_cast<unsigned long long>(audit.observed()),
              static_cast<unsigned long long>(
                  scrapes.load(std::memory_order_relaxed)));

  const bool invariant = off.digest == metrics.digest &&
                         off.digest == full.digest &&
                         off.digest == admin_run.digest;
  const bool within_budget = full_overhead <= kMaxOverhead &&
                             admin_overhead <= kMaxOverhead;
  std::printf("series,payload_invariant,within_overhead_budget\n"
              "obs_oracle,%s,%s\n",
              invariant ? "yes" : "NO", within_budget ? "yes" : "NO");
  if (!invariant) {
    std::fprintf(stderr,
                 "FAIL: observability changed response payloads "
                 "(off=%016llx metrics=%016llx full=%016llx admin=%016llx)\n",
                 static_cast<unsigned long long>(off.digest),
                 static_cast<unsigned long long>(metrics.digest),
                 static_cast<unsigned long long>(full.digest),
                 static_cast<unsigned long long>(admin_run.digest));
  }
  if (!within_budget) {
    std::fprintf(stderr,
                 "FAIL: instrumented runs %.2fx/%.2fx over baseline "
                 "(budget %.2fx)\n",
                 full_overhead, admin_overhead, kMaxOverhead);
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_obs_overhead\",\n");
    std::fprintf(f,
                 "  \"note\": \"closed-loop service replay, min-of-%d "
                 "runs per mode. Digests must match across modes "
                 "(payload invariance, including under live /metrics "
                 "and /requestz scrapes) and the instrumented runs must "
                 "stay within %.1fx of the baseline.\",\n",
                 kRepeats, kMaxOverhead);
    std::fprintf(f, "  \"db_objects\": %zu,\n", db->size());
    std::fprintf(f, "  \"requests\": %zu,\n", trace.size());
    std::fprintf(f, "  \"max_overhead_x\": %.2f,\n", kMaxOverhead);
    std::fprintf(f, "  \"payload_invariant\": %s,\n",
                 invariant ? "true" : "false");
    std::fprintf(f, "  \"within_overhead_budget\": %s,\n",
                 within_budget ? "true" : "false");
    std::fprintf(f, "  \"response_digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(off.digest));
    std::fprintf(f, "  \"trace_events\": %zu,\n", full.trace_events);
    std::fprintf(f, "  \"audited_requests\": %llu,\n",
                 static_cast<unsigned long long>(audit.observed()));
    std::fprintf(f, "  \"scrapes_during_run\": %llu,\n",
                 static_cast<unsigned long long>(
                     scrapes.load(std::memory_order_relaxed)));
    std::fprintf(
        f,
        "  \"series\": [\n"
        "    {\"mode\": \"off\", \"seconds\": %.4f, \"overhead_x\": 1.0},\n"
        "    {\"mode\": \"metrics\", \"seconds\": %.4f, \"overhead_x\": "
        "%.3f},\n"
        "    {\"mode\": \"metrics+trace\", \"seconds\": %.4f, "
        "\"overhead_x\": %.3f},\n"
        "    {\"mode\": \"metrics+admin\", \"seconds\": %.4f, "
        "\"overhead_x\": %.3f}\n  ]\n}\n",
        off.seconds, metrics.seconds, metrics_overhead, full.seconds,
        full_overhead, admin_run.seconds, admin_overhead);
    std::fclose(f);
  }
  return invariant && within_budget ? 0 : 2;
}
