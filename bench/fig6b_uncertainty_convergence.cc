// Figure 6(b): accumulated uncertainty Sum_k (UB_k - LB_k) of the
// domination-count bounds after each refinement iteration, for the
// Optimal vs MinMax decision criteria. Both converge toward zero; the
// optimal criterion starts lower (fewer influence objects) and stays
// below MinMax at every iteration.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("fig6b",
                     "accumulated uncertainty per iteration, Optimal vs "
                     "MinMax (paper: Fig. 6b)");

  workload::SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(10000);  // paper scale
  cfg.max_extent = 0.004;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  const size_t num_queries = 10;
  const int max_iterations = 6;  // paper: 8; cost grows exponentially

  std::vector<double> opt_unc(max_iterations + 1, 0.0);
  std::vector<double> mm_unc(max_iterations + 1, 0.0);
  std::vector<size_t> counts(max_iterations + 1, 0);

  for (auto criterion :
       {DominationCriterion::kOptimal, DominationCriterion::kMinMax}) {
    IdcaConfig config;
    config.criterion = criterion;
    config.max_iterations = max_iterations;
    config.uncertainty_epsilon = -1.0;  // run all iterations
    IdcaEngine engine(db, config);
    Rng rng(7);
    auto& acc =
        criterion == DominationCriterion::kOptimal ? opt_unc : mm_unc;
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.NextDouble(), rng.NextDouble()};
      const auto r = workload::MakeQueryObject(
          center, cfg.max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
      const IdcaResult result = engine.ComputeDomCount(b, *r);
      for (const IdcaIterationStats& s : result.iterations) {
        acc[s.iteration] += s.total_uncertainty;
        if (criterion == DominationCriterion::kOptimal) {
          ++counts[s.iteration];
        }
      }
    }
  }

  std::printf("iteration,optimal_uncertainty,minmax_uncertainty\n");
  for (int it = 0; it <= max_iterations; ++it) {
    if (counts[it] == 0) continue;
    const double n = static_cast<double>(num_queries);
    std::printf("%d,%.4f,%.4f\n", it, opt_unc[it] / n, mm_unc[it] / n);
  }
  return 0;
}
