// Ablation 1: tightness of the Uncertain Generating Function vs. the
// pair-of-regular-generating-functions construction (the technical-report
// baseline). The UGF is provably never looser; this harness quantifies
// by how much, as total per-rank bound width over random instances.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("abl1",
                     "UGF vs regular-GF-pair bound tightness (tech-report "
                     "ablation)");

  const size_t trials = 200;
  std::printf(
      "num_factors,bracket_width,ugf_uncertainty,gf_pair_uncertainty,"
      "ugf_sec,gf_pair_sec\n");
  for (size_t n : {5u, 10u, 20u, 40u}) {
    for (double width : {0.1, 0.3, 0.6}) {
      double ugf_unc = 0.0, pair_unc = 0.0;
      double ugf_sec = 0.0, pair_sec = 0.0;
      Rng rng(n * 1000 + static_cast<uint64_t>(width * 100));
      for (size_t t = 0; t < trials; ++t) {
        std::vector<double> lbs(n), ubs(n);
        for (size_t i = 0; i < n; ++i) {
          lbs[i] = rng.NextDouble() * (1.0 - width);
          ubs[i] = lbs[i] + width * rng.NextDouble();
        }
        Stopwatch sw1;
        UncertainGeneratingFunction ugf;
        for (size_t i = 0; i < n; ++i) ugf.Multiply(lbs[i], ubs[i]);
        const CountDistributionBounds ub = ugf.Bounds();
        ugf_sec += sw1.ElapsedSeconds();
        Stopwatch sw2;
        const CountDistributionBounds pb = RegularGfPairBounds(lbs, ubs);
        pair_sec += sw2.ElapsedSeconds();
        ugf_unc += ub.TotalUncertainty();
        pair_unc += pb.TotalUncertainty();
      }
      std::printf("%zu,%.2f,%.4f,%.4f,%.6f,%.6f\n", n, width,
                  ugf_unc / trials, pair_unc / trials, ugf_sec / trials,
                  pair_sec / trials);
    }
  }
  return 0;
}
