// IDCA hot-path benchmark: quantifies the PR-1 optimizations (flat-buffer
// UGF workspace, monotone verdict cache, parallel pair loop) and the SIMD
// kernel dispatch layered on top of them.
//
// Series (CSV to stdout; pass a path argument to also write the summary
// as JSON, the format committed as BENCH_idca_hotpath.json):
//
//   ugf_multiply      flat-buffer workspace reuse vs the nested-vector
//                     reference (the seed representation), building the
//                     full product + Bounds() per repetition — once pinned
//                     to the scalar kernel table and once on the vector
//                     (AVX2+FMA) table.
//   idca_refinement   one untruncated domination-count computation, new
//                     engine (flat UGF + verdict cache + batched lanes,
//                     1 thread) vs a faithful in-bench reimplementation of
//                     the seed's refinement loop; the engine timed under
//                     both dispatch tables.
//   thread_scaling    the same computation at 1/2/4/8 threads.
//
// Two oracles gate the exit status: the seed-style and engine bounds must
// agree within 1e-9 (different accumulation orders), and the scalar- and
// vector-dispatch engine bounds must be IDENTICAL BITS (same blocked
// accumulation order, gf/kernels.h) — any nonzero deviation exits 2.
//
// UPDB_BENCH_SCALE scales the database size.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "updb.h"

namespace updb {
namespace {

using workload::MakeQueryObject;
using workload::MakeSyntheticDatabase;
using workload::ObjectModel;
using workload::SyntheticConfig;

// ------------------------------------------------------------------ UGF

struct UgfSeries {
  size_t n = 0;
  double nested_us = 0.0;
  double scalar_us = 0.0;  // flat UGF pinned to the scalar kernel table
  double vector_us = 0.0;  // flat UGF on the auto-selected (SIMD) table
  double speedup = 0.0;       // nested / vector
  double simd_speedup = 0.0;  // scalar / vector
};

UgfSeries BenchUgf(size_t n, int reps) {
  Rng rng(101);
  std::vector<ProbabilityBounds> factors(n);
  for (auto& f : factors) {
    const double lb = rng.NextDouble();
    f = ProbabilityBounds{lb, lb + (1.0 - lb) * rng.NextDouble()};
  }
  UgfSeries out;
  out.n = n;

  double sink = 0.0;
  Stopwatch timer;
  for (int rep = 0; rep < reps; ++rep) {
    NestedVectorUgf nested;  // fresh rows every factor — the seed's cost
    for (const auto& f : factors) nested.Multiply(f);
    sink += nested.Bounds().lb(n / 2);
  }
  out.nested_us = timer.ElapsedSeconds() * 1e6 / reps;

  UncertainGeneratingFunction flat;
  auto time_flat = [&](bool force_scalar) {
    gf::ForceScalarKernels(force_scalar);
    // Warm-up rep so buffer growth is off the clock for both modes.
    flat.Reset();
    for (const auto& f : factors) flat.Multiply(f);
    timer.Reset();
    for (int rep = 0; rep < reps; ++rep) {
      flat.Reset();  // same workspace across reps: the IDCA reuse pattern
      for (const auto& f : factors) flat.Multiply(f);
      sink += flat.Bounds().lb(n / 2);
    }
    return timer.ElapsedSeconds() * 1e6 / reps;
  };
  out.scalar_us = time_flat(true);
  out.vector_us = time_flat(false);
  out.speedup = out.nested_us / out.vector_us;
  out.simd_speedup = out.scalar_us / out.vector_us;
  if (sink < -1.0) std::printf("#impossible\n");  // keep `sink` alive
  return out;
}

// ------------------------------------------------- seed-style refinement

/// Faithful reimplementation of the seed's refinement loop: nested-vector
/// UGF, no verdict cache (every candidate partition re-classified against
/// every pair each iteration), serial. This is the baseline the tentpole
/// rework replaced; keeping it here pins the "vs seed" speedup series to
/// the real thing rather than to a proxy.
CountDistributionBounds SeedStyleRefine(const UncertainDatabase& db,
                                        ObjectId b, const Pdf& reference,
                                        int max_iterations) {
  const IdcaConfig config;  // criterion/norm/split defaults
  const Pdf& target = db.object(b).pdf();
  const Rect& t = target.bounds();
  const Rect& r = reference.bounds();

  size_t complete = 0;
  std::vector<const UncertainObject*> influence;
  for (const UncertainObject& a : db.objects()) {
    if (a.id() == b) continue;
    switch (ClassifyDomination(a.mbr(), t, r, config.criterion, config.norm)) {
      case DominationClass::kDominates:
        if (a.existentially_certain()) {
          ++complete;
        } else {
          influence.push_back(&a);
        }
        break;
      case DominationClass::kDominated:
        break;
      case DominationClass::kUndecided:
        influence.push_back(&a);
        break;
    }
  }
  const size_t C = influence.size();

  DecompositionTree target_tree(&target, config.split_policy);
  DecompositionTree ref_tree(&reference, config.split_policy);
  std::vector<std::unique_ptr<DecompositionTree>> cand_trees;
  cand_trees.reserve(C);
  for (const UncertainObject* a : influence) {
    cand_trees.push_back(
        std::make_unique<DecompositionTree>(&a->pdf(), config.split_policy));
  }

  CountDistributionBounds agg = CountDistributionBounds::Zero(C + 1);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    size_t splits = target_tree.Deepen() + ref_tree.Deepen();
    for (auto& tree : cand_trees) splits += tree->Deepen();
    agg = CountDistributionBounds::Zero(C + 1);
    for (const Partition& bp : target_tree.frontier()) {
      for (const Partition& rp : ref_tree.frontier()) {
        const double w = bp.mass * rp.mass;
        NestedVectorUgf ugf;
        for (size_t i = 0; i < C; ++i) {
          ProbabilityBounds pb =
              PDomGivenPair(cand_trees[i]->frontier(), bp.region, rp.region,
                            config.criterion, config.norm);
          const double e = influence[i]->existence();
          pb.lb *= e;
          pb.ub *= e;
          ugf.Multiply(pb);
        }
        agg.AccumulateWeighted(ugf.Bounds(), w);
      }
    }
    if (splits == 0) break;
  }
  agg.Normalize();
  return agg.ShiftRight(complete, db.size());
}

}  // namespace
}  // namespace updb

int main(int argc, char** argv) {
  using namespace updb;
  bench::PrintBanner("bench_hotpath_scaling",
                     "flat UGF + verdict cache + parallel pair loop + SIMD");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware_threads=%u\n", hw);
  std::printf("# kernel_dispatch=%s\n", gf::ActiveKernelName());

  // ---- UGF multiplication series.
  std::printf("series,n,nested_us,scalar_us,vector_us,speedup,simd_speedup\n");
  std::vector<UgfSeries> ugf_series;
  for (size_t n : {size_t{32}, size_t{64}, size_t{128}}) {
    const int reps = n <= 64 ? 400 : 150;
    ugf_series.push_back(BenchUgf(n, reps));
    const UgfSeries& s = ugf_series.back();
    std::printf("ugf_multiply,%zu,%.2f,%.2f,%.2f,%.2fx,%.2fx\n", s.n,
                s.nested_us, s.scalar_us, s.vector_us, s.speedup,
                s.simd_speedup);
  }

  // ---- IDCA refinement: seed style vs new engine, single thread.
  SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(150);
  cfg.max_extent = 0.12;  // large extents -> many influence objects
  cfg.seed = 7;
  const UncertainDatabase db = MakeSyntheticDatabase(cfg);
  Rng rng(31);
  const auto query =
      MakeQueryObject(Point{0.5, 0.5}, 0.12, ObjectModel::kUniform, 0, rng);
  const ObjectId target = 42 % db.size();
  const int iterations = 5;

  Stopwatch timer;
  const CountDistributionBounds seed_bounds =
      SeedStyleRefine(db, target, *query, iterations);
  const double seed_seconds = timer.ElapsedSeconds();

  IdcaConfig fast;
  fast.max_iterations = iterations;
  fast.uncertainty_epsilon = -1.0;  // run all iterations, like the loop above
  fast.num_threads = 1;
  gf::ForceScalarKernels(true);
  const IdcaResult scalar_result =
      IdcaEngine(db, fast).ComputeDomCount(target, *query);
  const double scalar_seconds = scalar_result.seconds;
  gf::ForceScalarKernels(false);
  const IdcaResult fast_result =
      IdcaEngine(db, fast).ComputeDomCount(target, *query);
  const double fast_seconds = fast_result.seconds;

  // Oracle 1: seed-style and engine bounds agree within tolerance (the two
  // loops accumulate in different orders, so 1e-9, not equality).
  bool checksum_ok = seed_bounds.num_ranks() == fast_result.bounds.num_ranks();
  double max_dev = 0.0;
  if (checksum_ok) {
    for (size_t k = 0; k < seed_bounds.num_ranks(); ++k) {
      max_dev = std::max(
          max_dev, std::abs(seed_bounds.lb(k) - fast_result.bounds.lb(k)));
      max_dev = std::max(
          max_dev, std::abs(seed_bounds.ub(k) - fast_result.bounds.ub(k)));
    }
    checksum_ok = max_dev < 1e-9;
  }
  // Oracle 2: scalar and vector dispatch are the SAME accumulation order —
  // their bounds must match bit for bit, deviation exactly zero.
  double simd_dev = 0.0;
  bool simd_exact =
      scalar_result.bounds.num_ranks() == fast_result.bounds.num_ranks();
  if (simd_exact) {
    for (size_t k = 0; k < fast_result.bounds.num_ranks(); ++k) {
      simd_dev = std::max(simd_dev, std::abs(scalar_result.bounds.lb(k) -
                                             fast_result.bounds.lb(k)));
      simd_dev = std::max(simd_dev, std::abs(scalar_result.bounds.ub(k) -
                                             fast_result.bounds.ub(k)));
    }
    simd_exact = simd_dev == 0.0;
  }
  std::printf(
      "series,seed_style_s,scalar_s,vector_s,speedup,max_dev,simd_dev,"
      "agree\n");
  std::printf("idca_refinement,%.3f,%.3f,%.3f,%.2fx,%.2e,%.2e,%s\n",
              seed_seconds, scalar_seconds, fast_seconds,
              seed_seconds / fast_seconds, max_dev, simd_dev,
              checksum_ok && simd_exact ? "yes" : "NO");

  // ---- Thread scaling on the same computation.
  std::printf("series,threads,seconds,speedup_vs_1t\n");
  std::vector<std::pair<int, double>> scaling;
  double t1 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    IdcaConfig c = fast;
    c.num_threads = threads;
    // Warm the pool, then take the best of 3 runs.
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const IdcaResult r = IdcaEngine(db, c).ComputeDomCount(target, *query);
      best = std::min(best, r.seconds);
    }
    if (threads == 1) t1 = best;
    scaling.emplace_back(threads, best);
    std::printf("thread_scaling,%d,%.3f,%.2fx\n", threads, best, t1 / best);
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_hotpath_scaling\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(f, "  \"kernel_dispatch\": \"%s\",\n", gf::ActiveKernelName());
    std::fprintf(f,
                 "  \"note\": \"thread_scaling is bounded by "
                 "hardware_threads on the recording host; results are "
                 "bit-identical for every thread count (see "
                 "idca_parallel_test)\",\n");
    std::fprintf(f, "  \"db_objects\": %zu,\n", db.size());
    std::fprintf(f, "  \"refinement_iterations\": %d,\n", iterations);
    std::fprintf(f, "  \"ugf_multiply\": [\n");
    for (size_t i = 0; i < ugf_series.size(); ++i) {
      const UgfSeries& s = ugf_series[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"nested_us\": %.2f, "
                   "\"scalar_us\": %.2f, \"vector_us\": %.2f, "
                   "\"speedup\": %.2f, \"simd_speedup\": %.2f}%s\n",
                   s.n, s.nested_us, s.scalar_us, s.vector_us, s.speedup,
                   s.simd_speedup, i + 1 < ugf_series.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"idca_refinement\": {\"seed_style_seconds\": %.3f, "
                 "\"scalar_seconds\": %.3f, \"flat_cached_seconds\": %.3f, "
                 "\"speedup\": %.2f, \"max_abs_bound_deviation\": %.3e, "
                 "\"simd_max_abs_bound_deviation\": %.1e, \"agree\": %s},\n",
                 seed_seconds, scalar_seconds, fast_seconds,
                 seed_seconds / fast_seconds, max_dev, simd_dev,
                 checksum_ok && simd_exact ? "true" : "false");
    std::fprintf(f, "  \"thread_scaling\": [\n");
    for (size_t i = 0; i < scaling.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %d, \"seconds\": %.3f, "
                   "\"speedup_vs_1t\": %.2f}%s\n",
                   scaling[i].first, scaling[i].second,
                   t1 / scaling[i].second,
                   i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return checksum_ok && simd_exact ? 0 : 2;
}
