// Figure 5: runtime of the Monte-Carlo comparison partner (MC) per query
// as a function of the per-object sample size S. The paper reports
// runtimes growing superlinearly to ~450 s/query at S = 1500 on a
// 10,000-object database (2011 hardware). We keep the same structure —
// the number of averaged reference samples grows with S — on a scaled
// database, so the superlinear shape is preserved.

#include <cstdio>

#include "bench_util.h"
#include "updb.h"

int main() {
  using namespace updb;
  bench::PrintBanner("fig5",
                     "MC runtime per query vs. sample size (paper: Fig. 5)");

  workload::SyntheticConfig cfg;
  cfg.num_objects = bench::Scaled(2000);  // paper: 10,000
  cfg.max_extent = 0.004;
  cfg.model = workload::ObjectModel::kUniform;
  const UncertainDatabase db = workload::MakeSyntheticDatabase(cfg);
  const RTree index = BuildRTree(db.objects());
  const size_t num_queries = 3;

  std::printf("samples,avg_candidates,runtime_per_query_sec\n");
  for (size_t samples : {250u, 500u, 750u, 1000u, 1250u, 1500u}) {
    MonteCarloConfig mc_cfg;
    mc_cfg.samples_per_object = samples;
    // The paper averages over all S reference samples; we keep the count
    // proportional to S (S/10) so the cost curve keeps its shape.
    mc_cfg.reference_samples = samples / 10;
    MonteCarloEngine engine(db, mc_cfg);

    double total_seconds = 0.0;
    double total_candidates = 0.0;
    Rng rng(1000 + samples);
    for (size_t q = 0; q < num_queries; ++q) {
      const Point center{rng.NextDouble(), rng.NextDouble()};
      const auto r = workload::MakeQueryObject(
          center, cfg.max_extent, workload::ObjectModel::kUniform, 0, rng);
      const ObjectId b = workload::PickByMinDistRank(index, r->bounds(), 10);
      const MonteCarloResult result = engine.DomCountPdf(b, *r);
      total_seconds += result.seconds;
      total_candidates += result.avg_candidates;
    }
    std::printf("%zu,%.1f,%.4f\n", samples,
                total_candidates / static_cast<double>(num_queries),
                total_seconds / static_cast<double>(num_queries));
  }
  return 0;
}
