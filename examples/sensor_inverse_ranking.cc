// Sensor-network inverse ranking: a monitoring station stores noisy
// (temperature, humidity) readings from field sensors as discrete sample
// clouds (each sensor reports a burst of raw samples). When a new reading
// arrives, the operator asks where it ranks among all sensors' distances
// to a calibration target — the probabilistic inverse ranking query
// (Corollary 3), plus an expected-rank ordering (Corollary 6).

#include <cstdio>

#include "updb.h"

int main() {
  using namespace updb;
  Rng rng(123);

  // 40 sensors; each reading is a cloud of 64 raw samples around a hidden
  // true value — the discrete uncertainty model of the paper.
  UncertainDatabase db;
  const size_t num_sensors = 40;
  for (size_t s = 0; s < num_sensors; ++s) {
    const Point truth{rng.NextDouble(), rng.NextDouble()};
    std::vector<Point> burst;
    for (int i = 0; i < 64; ++i) {
      burst.push_back(Point{truth[0] + 0.02 * rng.NextGaussian(),
                            truth[1] + 0.02 * rng.NextGaussian()});
    }
    db.Add(std::make_shared<DiscreteSamplePdf>(std::move(burst)));
  }

  // Calibration target: a certain reference point.
  const DiscreteSamplePdf target({Point{0.5, 0.5}});

  // Inverse ranking of sensor 17's reading w.r.t. the target.
  IdcaConfig config;
  config.max_iterations = 12;
  const ObjectId sensor = 17;
  const CountDistributionBounds ranks =
      ProbabilisticInverseRanking(db, sensor, target, config);
  std::printf("rank distribution of sensor %u w.r.t. the calibration "
              "target:\n", sensor);
  for (size_t i = 0; i < ranks.num_ranks(); ++i) {
    if (ranks.ub(i) < 0.01) continue;
    std::printf("  P(rank = %2zu) in [%.3f, %.3f]\n", i + 1, ranks.lb(i),
                ranks.ub(i));
  }
  const ProbabilityBounds er = ranks.ExpectedRank();
  std::printf("expected rank in [%.2f, %.2f]\n", er.lb, er.ub);

  // Expected-rank ordering of the 10 sensors nearest the target.
  std::printf("\ntop of the expected-rank ordering:\n");
  const auto order = ExpectedRankOrder(db, target, config);
  for (size_t i = 0; i < 10 && i < order.size(); ++i) {
    std::printf("  %2zu. sensor %2u  E[rank] in [%.2f, %.2f]\n", i + 1,
                order[i].id, order[i].expected_rank.lb,
                order[i].expected_rank.ub);
  }

  // Sanity view: the Monte-Carlo oracle on the same discrete model (this
  // is exact for sample clouds, but far slower on large databases — the
  // point of the paper).
  MonteCarloConfig mc_cfg;
  mc_cfg.samples_per_object = 64;
  MonteCarloEngine mc(db, mc_cfg);
  const MonteCarloResult truth = mc.DomCountPdf(sensor, target);
  std::printf("\nMC cross-check (exact for the discrete model):\n");
  for (size_t i = 0; i < truth.pdf.size(); ++i) {
    if (truth.pdf[i] < 0.01) continue;
    std::printf("  P(rank = %2zu) = %.3f  (IDCA bracket [%.3f, %.3f])\n",
                i + 1, truth.pdf[i], ranks.lb(i), ranks.ub(i));
  }
  return 0;
}
