// Quickstart: build a tiny uncertain database, compute bounded domination
// counts for one object with IDCA, and answer a probabilistic threshold
// kNN question — the minimal end-to-end tour of the updb API.

#include <cstdio>

#include "updb.h"

int main() {
  using namespace updb;

  // 1. An uncertain database. Each object is a PDF over a bounded
  //    uncertainty region; here: uniform rectangles for three delivery
  //    drones whose GPS fixes are stale, plus one drone with a Gaussian
  //    error model.
  UncertainDatabase db;
  db.Add(std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.20, 0.30}, {0.02, 0.02})));  // drone 0
  db.Add(std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.35, 0.32}, {0.05, 0.03})));  // drone 1
  db.Add(std::make_shared<UniformPdf>(
      Rect::Centered(Point{0.70, 0.60}, {0.01, 0.01})));  // drone 2
  db.Add(std::make_shared<TruncatedGaussianPdf>(
      Rect::Centered(Point{0.40, 0.25}, {0.04, 0.04}),
      std::vector<double>{0.40, 0.25},
      std::vector<double>{0.02, 0.02}));                  // drone 3

  // 2. An uncertain reference point: the dispatcher's last known position.
  const UniformPdf dispatcher(
      Rect::Centered(Point{0.30, 0.30}, {0.01, 0.01}));

  // 3. Ask: how many drones are closer to the dispatcher than drone 1?
  //    IDCA returns conservative and progressive bounds on the whole
  //    distribution of that count.
  IdcaConfig config;
  config.max_iterations = 6;
  IdcaEngine engine(db, config);
  const IdcaResult result = engine.ComputeDomCount(/*b=*/1, dispatcher);

  std::printf("domination count of drone 1 w.r.t. the dispatcher:\n");
  std::printf("  %zu objects dominate in every world, %zu undecided\n",
              result.complete_domination_count, result.influence_count);
  for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
    std::printf("  P(count = %zu) in [%.3f, %.3f]\n", k,
                result.bounds.lb(k), result.bounds.ub(k));
  }

  // 4. The same machinery answers a probabilistic threshold 2NN query:
  //    which drones are among the dispatcher's 2 nearest neighbors with
  //    probability > 50%?
  const RTree index = BuildRTree(db.objects());
  const auto answers =
      ProbabilisticThresholdKnn(db, index, dispatcher, /*k=*/2, /*tau=*/0.5,
                                config);
  std::printf("\nprobabilistic 2NN with tau = 0.5:\n");
  for (const auto& a : answers) {
    const char* verdict =
        a.decision == PredicateDecision::kTrue
            ? "IN"
            : a.decision == PredicateDecision::kFalse ? "OUT" : "UNDECIDED";
    std::printf("  drone %u: P in [%.3f, %.3f] -> %s\n", a.id, a.prob.lb,
                a.prob.ub, verdict);
  }

  // 5. Rank distribution of drone 1 (probabilistic inverse ranking).
  const CountDistributionBounds ranks =
      ProbabilisticInverseRanking(db, 1, dispatcher, config);
  std::printf("\nrank distribution of drone 1 (rank = count + 1):\n");
  for (size_t i = 0; i < ranks.num_ranks(); ++i) {
    if (ranks.ub(i) < 1e-6) continue;
    std::printf("  P(rank = %zu) in [%.3f, %.3f]\n", i + 1, ranks.lb(i),
                ranks.ub(i));
  }
  return 0;
}
