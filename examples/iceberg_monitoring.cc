// Iceberg monitoring (the paper's real-data scenario): the International
// Ice Patrol tracks icebergs whose positions are uncertain — the longer
// since the last sighting, the larger the uncertainty region. A vessel
// asks: "which icebergs are among the k nearest to my route position with
// probability above tau?" — a probabilistic threshold kNN query.

#include <cstdio>

#include "updb.h"

int main() {
  using namespace updb;

  // Simulated IIP dataset (see DESIGN.md §4): clustered positions in the
  // normalized North Atlantic box, Gaussian position PDFs, staleness-
  // driven extents.
  workload::IipConfig cfg;
  cfg.num_objects = 2000;  // paper dataset: 6,216 sightings
  const UncertainDatabase db = workload::MakeIipLikeDataset(cfg);
  const RTree index = BuildRTree(db.objects());
  std::printf("iceberg database: %zu objects, R-tree height %zu\n",
              db.size(), index.height());

  // The vessel's reported position, itself uncertain (GPS + drift since
  // the report).
  Rng rng(7);
  const auto vessel = workload::MakeQueryObject(
      Point{0.32, 0.55}, 4 * cfg.max_extent,
      workload::ObjectModel::kGaussian, 0, rng);

  IdcaConfig config;
  config.max_iterations = 8;
  const size_t k = 5;
  for (double tau : {0.25, 0.75}) {
    QueryStats stats;
    const auto results = ProbabilisticThresholdKnn(db, index, *vessel, k,
                                                   tau, config, &stats);
    size_t in = 0, undecided = 0;
    for (const auto& r : results) {
      in += r.decision == PredicateDecision::kTrue;
      undecided += r.decision == PredicateDecision::kUndecided;
    }
    std::printf(
        "\n%zuNN alert set with confidence > %.0f%%: %zu icebergs "
        "(%zu candidates after pruning, %zu undecided, %.1f ms)\n",
        k, tau * 100, in, stats.candidates, undecided,
        stats.seconds * 1e3);
    for (const auto& r : results) {
      if (r.decision != PredicateDecision::kFalse) {
        const Point c = db.object(r.id).mbr().Center();
        std::printf("  iceberg %5u near (%.3f, %.3f): P(kNN) in "
                    "[%.3f, %.3f]%s\n",
                    r.id, c[0], c[1], r.prob.lb, r.prob.ub,
                    r.decision == PredicateDecision::kUndecided
                        ? "  (report with confidence bracket)"
                        : "");
      }
    }
  }

  // Reverse view: for a planned refueling stop, which icebergs would have
  // the stop among their k nearest positions (useful for route risk
  // attribution)?
  const auto stop = workload::MakeQueryObject(
      Point{0.30, 0.50}, 2 * cfg.max_extent,
      workload::ObjectModel::kGaussian, 0, rng);
  QueryStats rknn_stats;
  const auto rknn = ProbabilisticThresholdRknn(db, index, *stop, 3, 0.5,
                                               config, &rknn_stats);
  size_t rknn_in = 0;
  for (const auto& r : rknn) rknn_in += r.decision == PredicateDecision::kTrue;
  std::printf("\nreverse 3NN of the refueling stop: %zu icebergs "
              "(%zu candidates, %.1f ms)\n",
              rknn_in, rknn_stats.candidates, rknn_stats.seconds * 1e3);
  return 0;
}
