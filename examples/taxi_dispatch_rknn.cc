// Taxi dispatch with reverse kNN: customers' phones report uncertain
// positions (coarse cell fixes = large uniform rectangles; GPS fixes =
// small ones). When a taxi frees up, the dispatcher wants the customers
// for whom this taxi is — with probability above tau — among their k
// closest taxis: a probabilistic threshold RkNN query (Corollary 5) where
// the "database of references" is the customers and the query is the taxi.

#include <cstdio>

#include "updb.h"

int main() {
  using namespace updb;
  Rng rng(2026);

  // Database: positions of 60 available taxis (the objects competing for
  // customers). A mix of precise and stale fixes.
  UncertainDatabase taxis;
  for (int t = 0; t < 60; ++t) {
    const Point center{rng.NextDouble(), rng.NextDouble()};
    const double extent = rng.Bernoulli(0.3) ? 0.08 : 0.01;  // stale : fresh
    taxis.Add(std::make_shared<UniformPdf>(
        Rect::Centered(center, {extent / 2, extent / 2})));
  }
  const RTree index = BuildRTree(taxis.objects());

  // The taxi that just became available, between two plausible corners.
  std::vector<std::unique_ptr<Pdf>> modes;
  modes.push_back(std::make_unique<UniformPdf>(
      Rect::Centered(Point{0.48, 0.52}, {0.01, 0.01})));
  modes.push_back(std::make_unique<UniformPdf>(
      Rect::Centered(Point{0.55, 0.47}, {0.01, 0.01})));
  const MixturePdf free_taxi(std::move(modes), {0.7, 0.3});

  IdcaConfig config;
  config.max_iterations = 6;
  for (size_t k : {size_t{2}, size_t{4}}) {
    QueryStats stats;
    const auto results = ProbabilisticThresholdRknn(
        taxis, index, free_taxi, k, /*tau=*/0.5, config, &stats);
    size_t assigned = 0;
    for (const auto& r : results) {
      assigned += r.decision == PredicateDecision::kTrue;
    }
    std::printf(
        "taxis that see the free taxi among their %zu nearest (tau=0.5): "
        "%zu of %zu candidates (%.1f ms, %zu IDCA iterations total)\n",
        k, assigned, stats.candidates, stats.seconds * 1e3,
        stats.idca_iterations);
    for (const auto& r : results) {
      if (r.decision == PredicateDecision::kTrue) {
        const Point c = taxis.object(r.id).mbr().Center();
        std::printf("  taxi %2u near (%.2f, %.2f), P in [%.3f, %.3f]\n",
                    r.id, c[0], c[1], r.prob.lb, r.prob.ub);
      }
    }
  }
  return 0;
}
