// updb command-line driver: generate datasets, inspect them, and run the
// paper's queries without writing C++.
//
//   updb_cli generate --kind=synthetic|iip --n=10000 --extent=0.004
//            --model=uniform|gaussian|discrete --samples=1000 --seed=42
//            --out=data.updb
//   updb_cli info --db=data.updb
//   updb_cli domcount --db=data.updb --b=17 --qx=0.5 --qy=0.5
//            --qextent=0.004 --iterations=6 --threads=1
//   (--threads: 1 = serial, 0 = all hardware threads; results are
//    identical for every value — also accepted by knn/rknn)
//   updb_cli knn --db=data.updb --k=5 --tau=0.5 --qx=0.5 --qy=0.5
//            --qextent=0.004
//   updb_cli rknn --db=data.updb --k=5 --tau=0.5 --qx=0.5 --qy=0.5
//            --qextent=0.004

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "updb.h"

namespace {

using namespace updb;

/// Minimal --key=value argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<size_t>(std::atoll(it->second.c_str()));
  }

 private:
  std::map<std::string, std::string> values_;
};

workload::ObjectModel ParseModel(const std::string& s) {
  if (s == "gaussian") return workload::ObjectModel::kGaussian;
  if (s == "discrete") return workload::ObjectModel::kDiscrete;
  return workload::ObjectModel::kUniform;
}

int Generate(const Args& args) {
  const std::string out = args.Get("out", "data.updb");
  UncertainDatabase db;
  if (args.Get("kind", "synthetic") == "iip") {
    workload::IipConfig cfg;
    cfg.num_objects = args.GetSize("n", cfg.num_objects);
    cfg.max_extent = args.GetDouble("extent", cfg.max_extent);
    cfg.model = ParseModel(args.Get("model", "gaussian"));
    cfg.samples_per_object = args.GetSize("samples", 1000);
    cfg.seed = args.GetSize("seed", cfg.seed);
    db = workload::MakeIipLikeDataset(cfg);
  } else {
    workload::SyntheticConfig cfg;
    cfg.num_objects = args.GetSize("n", cfg.num_objects);
    cfg.max_extent = args.GetDouble("extent", cfg.max_extent);
    cfg.model = ParseModel(args.Get("model", "uniform"));
    cfg.samples_per_object = args.GetSize("samples", 1000);
    cfg.seed = args.GetSize("seed", cfg.seed);
    db = workload::MakeSyntheticDatabase(cfg);
  }
  const Status status = io::SaveDatabase(db, out);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu objects to %s\n", db.size(), out.c_str());
  return 0;
}

StatusOr<UncertainDatabase> LoadDb(const Args& args) {
  return io::LoadDatabase(args.Get("db", "data.updb"));
}

int Info(const Args& args) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  double max_extent = 0.0, total_extent = 0.0;
  size_t uncertain_existence = 0;
  for (const UncertainObject& o : db->objects()) {
    for (size_t i = 0; i < o.dim(); ++i) {
      max_extent = std::max(max_extent, o.mbr().side(i).length());
      total_extent += o.mbr().side(i).length();
    }
    uncertain_existence += !o.existentially_certain();
  }
  const RTree index = BuildRTree(db->objects());
  std::printf("objects:              %zu\n", db->size());
  std::printf("dimensionality:       %zu\n", db->dim());
  std::printf("max extent:           %.6f\n", max_extent);
  std::printf("mean extent:          %.6f\n",
              total_extent / (static_cast<double>(db->size() * db->dim())));
  std::printf("existentially uncertain objects: %zu\n", uncertain_existence);
  std::printf("r-tree height:        %zu\n", index.height());
  return 0;
}

std::shared_ptr<const Pdf> QueryObjectFromArgs(const Args& args, Rng& rng) {
  const Point center{args.GetDouble("qx", 0.5), args.GetDouble("qy", 0.5)};
  return workload::MakeQueryObject(center,
                                   args.GetDouble("qextent", 0.004),
                                   workload::ObjectModel::kUniform, 0, rng);
}

int DomCount(const Args& args) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const ObjectId b = static_cast<ObjectId>(args.GetSize("b", 0));
  if (b >= db->size()) {
    std::fprintf(stderr, "--b out of range (database has %zu objects)\n",
                 db->size());
    return 1;
  }
  Rng rng(7);
  const auto q = QueryObjectFromArgs(args, rng);
  IdcaConfig config;
  config.max_iterations = static_cast<int>(args.GetSize("iterations", 6));
  config.num_threads = static_cast<int>(args.GetSize("threads", 1));
  IdcaEngine engine(*db, config);
  const IdcaResult result = engine.ComputeDomCount(b, *q);
  std::printf("complete dominators: %zu, influence objects: %zu, "
              "%.3f ms\n",
              result.complete_domination_count, result.influence_count,
              result.seconds * 1e3);
  for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
    if (result.bounds.ub(k) < 1e-9) continue;
    std::printf("P(DomCount = %zu) in [%.4f, %.4f]\n", k,
                result.bounds.lb(k), result.bounds.ub(k));
  }
  return 0;
}

int ThresholdQuery(const Args& args, bool reverse) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  Rng rng(7);
  const auto q = QueryObjectFromArgs(args, rng);
  const size_t k = args.GetSize("k", 5);
  const double tau = args.GetDouble("tau", 0.5);
  IdcaConfig config;
  config.max_iterations = static_cast<int>(args.GetSize("iterations", 8));
  config.num_threads = static_cast<int>(args.GetSize("threads", 1));
  const RTree index = BuildRTree(db->objects());
  QueryStats stats;
  const auto results =
      reverse
          ? ProbabilisticThresholdRknn(*db, index, *q, k, tau, config, &stats)
          : ProbabilisticThresholdKnn(*db, index, *q, k, tau, config, &stats);
  std::printf("%s query, k=%zu tau=%.2f: %zu candidates, %.3f ms\n",
              reverse ? "RkNN" : "kNN", k, tau, stats.candidates,
              stats.seconds * 1e3);
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kFalse) continue;
    std::printf("object %u: P in [%.4f, %.4f] -> %s\n", r.id, r.prob.lb,
                r.prob.ub,
                r.decision == PredicateDecision::kTrue ? "IN" : "UNDECIDED");
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: updb_cli <generate|info|domcount|knn|rknn> "
               "[--key=value ...]\n(see header of tools/updb_cli.cc)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "generate") return Generate(args);
  if (command == "info") return Info(args);
  if (command == "domcount") return DomCount(args);
  if (command == "knn") return ThresholdQuery(args, /*reverse=*/false);
  if (command == "rknn") return ThresholdQuery(args, /*reverse=*/true);
  return Usage();
}
