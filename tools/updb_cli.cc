// updb command-line driver: generate datasets, inspect them, and run the
// paper's queries without writing C++.
//
//   updb_cli generate --kind=synthetic|iip --n=10000 --extent=0.004
//            --model=uniform|gaussian|discrete --samples=1000 --seed=42
//            --out=data.updb
//   updb_cli info --db=data.updb
//   updb_cli domcount --db=data.updb --b=17 --qx=0.5 --qy=0.5
//            --qextent=0.004 --iterations=6 --threads=1 --seed=7
//   (--threads: 1 = serial, 0 = all hardware threads; results are
//    identical for every value — also accepted by knn/rknn.
//    --seed drives query-object generation and is echoed in the output
//    header, so any run is reproducible from its logged command line.)
//   updb_cli knn --db=data.updb --k=5 --tau=0.5 --qx=0.5 --qy=0.5
//            --qextent=0.004 --seed=7
//   updb_cli rknn --db=data.updb --k=5 --tau=0.5 --qx=0.5 --qy=0.5
//            --qextent=0.004 --seed=7
//   updb_cli serve --n=400 --extent=0.02 --requests=100 --workers=2
//            --batch=8 --queue=256 --qps=0 --iterations=6 --seed=1
//            [--shards=4] [--db=data.updb]
//            [--deadline-ms=20 --deadline-fraction=0.5]
//            [--metrics-out=metrics.json] [--prom-out=metrics.prom]
//            [--trace-out=trace.json]
//            [--response-cache=256] [--verdict-memo=65536]
//            [--admin-port=8080 --admin-linger-ms=0]
//            [--audit-capacity=256 --audit-threshold-ms=50
//             --audit-sample-every=64]
//            [--churn --churn-batches=8 --churn-per-batch=16
//             --churn-interval-ms=20 --churn-seed=2]
//   (serve-bench mode: generates — or loads — a database into a versioned
//    store (sharded --shards ways; payloads are shard-count-invariant),
//    builds a mixed query trace from --seed, replays it at --qps offered
//    load (0 = as fast as possible) against the concurrent QueryService,
//    and prints a determinism digest of all responses plus the metrics
//    JSON — to stdout, or to --metrics-out so the digest stays
//    machine-greppable on its own. The metrics JSON has four sections:
//    "service" (the ServiceMetrics snapshot), "store" (per-shard live
//    object counts plus publish drain/build latency aggregates), "wal"
//    (append/fsync/checkpoint counters) and "recovery" (the startup
//    recovery report, or {"recovered": false}). --prom-out additionally
//    writes the unified registry as a Prometheus text exposition, and
//    --trace-out records a structured span tree of the whole run —
//    submit, queue wait, batch execution, IDCA phases, store publishes,
//    WAL fsyncs and checkpoints — as Chrome trace-event JSON loadable in
//    Perfetto. Payloads are bit-identical with tracing on or off. With
//    --churn a writer thread concurrently applies seed-deterministic
//    mutation batches and publishes new versions while the trace replays;
//    the summary then reports the span of snapshot versions the responses
//    were served from. --response-cache=N enables the versioned
//    full-response cache (N entries) and --verdict-memo=N the
//    snapshot-scoped domination-verdict memo (N 16-byte slots); their
//    hit/miss/eviction series join the unified registry. With the
//    response cache on and a quiet store (no churn, no load-shed
//    rejections) the run replays the trace a second time through a fresh
//    service sharing the populated caches and exits 2 unless the warm
//    response sequence digests bit-identically to the first.
//    --admin-port=P starts the live introspection plane on 127.0.0.1:P
//    (0 picks an ephemeral port, echoed as `# admin listening ...`):
//    /metrics, /healthz, /readyz, /statusz and /requestz — the
//    slow-request audit log, tuned by --audit-capacity (ring slots),
//    --audit-threshold-ms (latency above which every request is recorded)
//    and --audit-sample-every (1-in-N sample of the fast remainder).
//    --admin-linger-ms keeps the admin plane up that long after the
//    replay finishes so external probes can scrape a quiesced process.
//    Payloads are bit-identical with the admin plane on or off.)
//   updb_cli mutate --db=data.updb --out=data2.updb --batches=4
//            --per-batch=32 --insert-w=0.4 --update-w=0.4 --remove-w=0.2
//            --extent=0.01 --model=uniform --samples=64 --seed=1
//            [--compact-fraction=0.25] [--shards=4]
//            [--metrics-out=store_metrics.json] [--prom-out=metrics.prom]
//            [--trace-out=trace.json]
//            [--wal-dir=walr --fsync=never|every_publish|every_batch
//             --checkpoint-every=8]
//   (replays a seed-deterministic mutation trace against the store — one
//    publish per batch, logging per-publish delta size, compactions and
//    drain/build latency — and writes the final published snapshot to
//    --out; --metrics-out dumps the store/wal/recovery sections of the
//    same metrics JSON as serve, and --prom-out/--trace-out work as in
//    serve.)
//   updb_cli recover --wal-dir=walr [--shards=4] [--out=recovered.updb]
//   (rebuilds the store from the newest valid checkpoint plus the WAL
//    tail in --wal-dir, prints a single-line JSON report — recovered
//    version, records replayed, truncated-tail bytes, data-loss flag and
//    per-file warnings — and optionally saves the recovered latest
//    snapshot to --out. Exit 0 on success, 1 when nothing recoverable.)
//
//   Durability (--wal-dir on serve/mutate): every mutation is appended to
//   per-shard CRC32C-framed WAL segments in --wal-dir before it is
//   acknowledged, and publishes write periodic checkpoints
//   (--checkpoint-every, default 8 publishes). --fsync picks the flush
//   policy: "never" (OS-buffered), "every_publish" (default; each
//   published version is durable) or "every_batch" (each acknowledged
//   batch is durable). If --wal-dir already holds WAL or checkpoint data
//   the command first RECOVERS that history — the --db/--n seed is
//   ignored — and then continues appending to the same log, so a killed
//   run can simply be re-executed.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "gf/kernels.h"
#include "updb.h"

namespace {

using namespace updb;

/// Minimal --key=value argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<size_t>(std::atoll(it->second.c_str()));
  }

 private:
  std::map<std::string, std::string> values_;
};

workload::ObjectModel ParseModel(const std::string& s) {
  if (s == "gaussian") return workload::ObjectModel::kGaussian;
  if (s == "discrete") return workload::ObjectModel::kDiscrete;
  return workload::ObjectModel::kUniform;
}

int Generate(const Args& args) {
  const std::string out = args.Get("out", "data.updb");
  UncertainDatabase db;
  uint64_t seed = 0;
  if (args.Get("kind", "synthetic") == "iip") {
    workload::IipConfig cfg;
    cfg.num_objects = args.GetSize("n", cfg.num_objects);
    cfg.max_extent = args.GetDouble("extent", cfg.max_extent);
    cfg.model = ParseModel(args.Get("model", "gaussian"));
    cfg.samples_per_object = args.GetSize("samples", 1000);
    cfg.seed = args.GetSize("seed", cfg.seed);
    seed = cfg.seed;
    db = workload::MakeIipLikeDataset(cfg);
  } else {
    workload::SyntheticConfig cfg;
    cfg.num_objects = args.GetSize("n", cfg.num_objects);
    cfg.max_extent = args.GetDouble("extent", cfg.max_extent);
    cfg.model = ParseModel(args.Get("model", "uniform"));
    cfg.samples_per_object = args.GetSize("samples", 1000);
    cfg.seed = args.GetSize("seed", cfg.seed);
    seed = cfg.seed;
    db = workload::MakeSyntheticDatabase(cfg);
  }
  const Status status = io::SaveDatabase(db, out);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("seed=%llu wrote %zu objects to %s\n",
              static_cast<unsigned long long>(seed), db.size(), out.c_str());
  return 0;
}

StatusOr<UncertainDatabase> LoadDb(const Args& args) {
  return io::LoadDatabase(args.Get("db", "data.updb"));
}

int Info(const Args& args) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  double max_extent = 0.0, total_extent = 0.0;
  size_t uncertain_existence = 0;
  for (const UncertainObject& o : db->objects()) {
    for (size_t i = 0; i < o.dim(); ++i) {
      max_extent = std::max(max_extent, o.mbr().side(i).length());
      total_extent += o.mbr().side(i).length();
    }
    uncertain_existence += !o.existentially_certain();
  }
  const RTree index = BuildRTree(db->objects());
  std::printf("objects:              %zu\n", db->size());
  std::printf("dimensionality:       %zu\n", db->dim());
  std::printf("max extent:           %.6f\n", max_extent);
  std::printf("mean extent:          %.6f\n",
              total_extent / (static_cast<double>(db->size() * db->dim())));
  std::printf("existentially uncertain objects: %zu\n", uncertain_existence);
  std::printf("r-tree height:        %zu\n", index.height());
  return 0;
}

/// Seed for query-object generation: --seed, default 7 (the historical
/// hard-wired value). Echoed in every command's output header.
uint64_t QuerySeed(const Args& args) {
  return static_cast<uint64_t>(args.GetSize("seed", 7));
}

std::shared_ptr<const Pdf> QueryObjectFromArgs(const Args& args, Rng& rng) {
  const Point center{args.GetDouble("qx", 0.5), args.GetDouble("qy", 0.5)};
  return workload::MakeQueryObject(center,
                                   args.GetDouble("qextent", 0.004),
                                   workload::ObjectModel::kUniform, 0, rng);
}

int DomCount(const Args& args) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const ObjectId b = static_cast<ObjectId>(args.GetSize("b", 0));
  if (b >= db->size()) {
    std::fprintf(stderr, "--b out of range (database has %zu objects)\n",
                 db->size());
    return 1;
  }
  const uint64_t seed = QuerySeed(args);
  Rng rng(seed);
  const auto q = QueryObjectFromArgs(args, rng);
  IdcaConfig config;
  config.max_iterations = static_cast<int>(args.GetSize("iterations", 6));
  config.num_threads = static_cast<int>(args.GetSize("threads", 1));
  IdcaEngine engine(*db, config);
  const IdcaResult result = engine.ComputeDomCount(b, *q);
  std::printf("seed=%llu kernel=%s complete dominators: %zu, "
              "influence objects: %zu, %.3f ms\n",
              static_cast<unsigned long long>(seed), gf::ActiveKernelName(),
              result.complete_domination_count, result.influence_count,
              result.seconds * 1e3);
  for (size_t k = 0; k < result.bounds.num_ranks(); ++k) {
    if (result.bounds.ub(k) < 1e-9) continue;
    std::printf("P(DomCount = %zu) in [%.4f, %.4f]\n", k,
                result.bounds.lb(k), result.bounds.ub(k));
  }
  return 0;
}

int ThresholdQuery(const Args& args, bool reverse) {
  StatusOr<UncertainDatabase> db = LoadDb(args);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = QuerySeed(args);
  Rng rng(seed);
  const auto q = QueryObjectFromArgs(args, rng);
  const size_t k = args.GetSize("k", 5);
  const double tau = args.GetDouble("tau", 0.5);
  IdcaConfig config;
  config.max_iterations = static_cast<int>(args.GetSize("iterations", 8));
  config.num_threads = static_cast<int>(args.GetSize("threads", 1));
  const RTree index = BuildRTree(db->objects());
  QueryStats stats;
  const auto results =
      reverse
          ? ProbabilisticThresholdRknn(*db, index, *q, k, tau, config, &stats)
          : ProbabilisticThresholdKnn(*db, index, *q, k, tau, config, &stats);
  std::printf("seed=%llu %s query, k=%zu tau=%.2f: %zu candidates, %.3f ms\n",
              static_cast<unsigned long long>(seed), reverse ? "RkNN" : "kNN",
              k, tau, stats.candidates, stats.seconds * 1e3);
  for (const auto& r : results) {
    if (r.decision == PredicateDecision::kFalse) continue;
    std::printf("object %u: P in [%.4f, %.4f] -> %s\n", r.id, r.prob.lb,
                r.prob.ub,
                r.decision == PredicateDecision::kTrue ? "IN" : "UNDECIDED");
  }
  return 0;
}

/// Store half of the metrics JSON: per-shard live object counts plus the
/// drain/build publish-latency aggregates.
std::string StoreMetricsJson(const store::VersionedObjectStore& s) {
  const store::PublishMetrics pm = s.publish_metrics();
  const std::vector<size_t> counts = s.ShardLiveCounts();
  const double publishes =
      pm.publishes > 0 ? static_cast<double>(pm.publishes) : 1.0;
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"num_shards\": %zu, ",
                s.num_shards());
  out += buf;
  out += "\"shard_live_counts\": [";
  for (size_t i = 0; i < counts.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%zu", i > 0 ? ", " : "", counts[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "], \"publishes\": %llu, "
                "\"publish_drain_ms\": {\"mean\": %.6g, \"max\": %.6g}, "
                "\"publish_build_ms\": {\"mean\": %.6g, \"max\": %.6g}}",
                static_cast<unsigned long long>(pm.publishes),
                pm.total_drain_ms / publishes, pm.max_drain_ms,
                pm.total_build_ms / publishes, pm.max_build_ms);
  out += buf;
  return out;
}

/// Builds the store for serve/mutate, honoring --wal-dir / --fsync /
/// --checkpoint-every. Without --wal-dir: a plain in-memory store seeded
/// from `db`. With --wal-dir on a fresh directory: a durable store seeded
/// from `db`. With --wal-dir on a directory that already holds WAL or
/// checkpoint data: the persisted history is recovered (`db` is ignored),
/// the recovery report is printed as a `# recovery ...` line, and
/// durability is re-attached so the run continues the existing log.
StatusOr<std::shared_ptr<store::VersionedObjectStore>> MakeStore(
    const Args& args, const UncertainDatabase& db, store::StoreOptions sopts,
    store::RecoveryReport* report_out, bool* did_recover) {
  if (did_recover != nullptr) *did_recover = false;
  const std::string wal_dir = args.Get("wal-dir", "");
  if (wal_dir.empty()) {
    return std::make_shared<store::VersionedObjectStore>(db, sopts);
  }
  const StatusOr<store::FsyncPolicy> fsync =
      store::ParseFsyncPolicy(args.Get("fsync", "every_publish"));
  if (!fsync.ok()) return fsync.status();
  sopts.durability.wal_dir = wal_dir;
  sopts.durability.fsync = *fsync;
  sopts.durability.checkpoint_every =
      std::max<uint64_t>(args.GetSize("checkpoint-every", 8), 1);

  StatusOr<std::unique_ptr<store::VersionedObjectStore>> opened =
      store::VersionedObjectStore::Open(db, sopts);
  if (opened.ok()) {
    return std::shared_ptr<store::VersionedObjectStore>(std::move(*opened));
  }
  if (opened.status().code() != StatusCode::kFailedPrecondition) {
    return opened.status();
  }
  // The directory already holds store data: recover and continue.
  store::RecoveryReport local_report;
  store::RecoveryReport& report =
      report_out != nullptr ? *report_out : local_report;
  StatusOr<std::unique_ptr<store::VersionedObjectStore>> recovered =
      store::RecoverStore(wal_dir, sopts, &report);
  if (!recovered.ok()) return recovered.status();
  if (did_recover != nullptr) *did_recover = true;
  std::printf("# recovery %s\n", report.ToJson().c_str());
  const Status attached = (*recovered)->AttachDurability(sopts.durability);
  if (!attached.ok()) return attached;
  return std::shared_ptr<store::VersionedObjectStore>(std::move(*recovered));
}

/// "recovery" section of the metrics JSON: whether this process recovered
/// an existing WAL directory at startup, and the report when it did.
std::string RecoveryMetricsJson(bool did_recover,
                                const store::RecoveryReport& report) {
  if (!did_recover) return "{\"recovered\": false}";
  return "{\"recovered\": true, \"report\": " + report.ToJson() + "}";
}

/// Shared tail of serve/mutate: write the trace (--trace-out) and the
/// Prometheus exposition (--prom-out) when requested. Returns false on an
/// unwritable path.
bool WriteObsOutputs(const Args& args, const obs::TraceRecorder* trace,
                     const obs::MetricsRegistry& registry) {
  const std::string trace_out = args.Get("trace-out", "");
  if (!trace_out.empty() && trace != nullptr) {
    const Status written = trace->WriteChromeJson(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", trace_out.c_str(),
                   written.ToString().c_str());
      return false;
    }
    std::printf("# trace written to %s (%zu events, %llu dropped)\n",
                trace_out.c_str(), trace->size(),
                static_cast<unsigned long long>(trace->dropped()));
  }
  const std::string prom_out = args.Get("prom-out", "");
  if (!prom_out.empty()) {
    std::FILE* f = std::fopen(prom_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", prom_out.c_str());
      return false;
    }
    const std::string text = registry.ToPrometheus();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("# prometheus metrics written to %s\n", prom_out.c_str());
  }
  return true;
}

int Recover(const Args& args) {
  const std::string wal_dir = args.Get("wal-dir", "");
  if (wal_dir.empty()) {
    std::fprintf(stderr, "recover requires --wal-dir\n");
    return 2;
  }
  store::StoreOptions sopts;
  sopts.num_shards = std::max<size_t>(args.GetSize("shards", 1), 1);
  store::RecoveryReport report;
  StatusOr<std::unique_ptr<store::VersionedObjectStore>> recovered =
      store::RecoverStore(wal_dir, sopts, &report);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.ToJson().c_str());
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    const Status saved =
        io::SaveDatabase(*(*recovered)->latest()->db(), out);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# wrote recovered version %llu (%zu objects) to %s\n",
                 static_cast<unsigned long long>((*recovered)->version()),
                 (*recovered)->latest()->size(), out.c_str());
  }
  return 0;
}

int Serve(const Args& args) {
  // Store seed: load --db when given, otherwise generate a synthetic
  // database in memory from the logged parameters.
  UncertainDatabase db;
  if (args.Get("db", "").empty()) {
    workload::SyntheticConfig cfg;
    cfg.num_objects = args.GetSize("n", 400);
    cfg.max_extent = args.GetDouble("extent", 0.02);
    cfg.model = ParseModel(args.Get("model", "uniform"));
    cfg.samples_per_object = args.GetSize("samples", 64);
    cfg.seed = args.GetSize("dbseed", cfg.seed);
    db = workload::MakeSyntheticDatabase(cfg);
  } else {
    StatusOr<UncertainDatabase> loaded = LoadDb(args);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  }

  const uint64_t seed = static_cast<uint64_t>(args.GetSize("seed", 1));
  service::TraceConfig tcfg;
  tcfg.num_requests = args.GetSize("requests", 100);
  tcfg.seed = seed;
  tcfg.k_max = args.GetSize("kmax", 10);
  tcfg.tau = args.GetDouble("tau", 0.5);
  tcfg.query_extent = args.GetDouble("qextent", 0.02);
  tcfg.budget.max_iterations =
      static_cast<int>(args.GetSize("iterations", 6));
  tcfg.budget.uncertainty_epsilon = args.GetDouble("epsilon", 0.0);
  tcfg.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  tcfg.deadline_fraction =
      tcfg.deadline_ms > 0.0 ? args.GetDouble("deadline-fraction", 1.0) : 0.0;
  const std::vector<service::QueryRequest> trace =
      service::MakeTrace(db, tcfg);

  service::QueryServiceOptions opts;
  opts.num_workers = std::max<size_t>(args.GetSize("workers", 2), 1);
  opts.batch_size = std::max<size_t>(args.GetSize("batch", 8), 1);
  opts.max_queue = std::max<size_t>(args.GetSize("queue", 256), 1);
  const double est_iter_ms = args.GetDouble("est-iter-ms", 5.0);
  opts.est_iteration_ms = est_iter_ms > 0.0 ? est_iter_ms : 5.0;
  const double qps = args.GetDouble("qps", 0.0);
  const bool churn = !args.Get("churn", "").empty();

  // Observability: one process-wide registry unifies the service, store,
  // WAL, checkpoint and recovery series; --trace-out enables the span
  // recorder (null recorder = near-zero cost when absent).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string trace_out = args.Get("trace-out", "");
  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* tracer =
      trace_out.empty() ? nullptr : &trace_recorder;
  if (tracer != nullptr) tracer->RegisterGauges(&registry);
  opts.metrics_registry = &registry;
  opts.trace = tracer;

  // Live introspection plane (--admin-port) + slow-request audit log.
  // The audit log is created whenever the admin plane is on (or auditing
  // is explicitly tuned): its record path is lock-free and it never
  // changes a payload, so leaving it on costs a ring write per request.
  const bool admin_enabled = !args.Get("admin-port", "").empty();
  std::unique_ptr<obs::RequestAuditLog> audit_log;
  if (admin_enabled || !args.Get("audit-capacity", "").empty()) {
    obs::AuditLogOptions audit_opts;
    audit_opts.capacity = args.GetSize("audit-capacity", 256);
    audit_opts.slow_threshold_seconds =
        args.GetDouble("audit-threshold-ms", 50.0) / 1e3;
    audit_opts.sample_every = args.GetSize("audit-sample-every", 64);
    audit_opts.registry = &registry;
    audit_log = std::make_unique<obs::RequestAuditLog>(audit_opts);
    opts.audit_log = audit_log.get();
  }

  store::StoreOptions sopts;
  sopts.num_shards = std::max<size_t>(args.GetSize("shards", 1), 1);
  sopts.metrics_registry = &registry;
  sopts.trace = tracer;

  // Cross-request caching: the caches are built here (not via the
  // capacity options) so the warm oracle pass below can share them with
  // a second service instance.
  std::shared_ptr<cache::ResponseCache> response_cache;
  const size_t response_cache_cap = args.GetSize("response-cache", 0);
  if (response_cache_cap > 0) {
    response_cache = std::make_shared<cache::ResponseCache>(
        response_cache_cap, &registry);
    opts.response_cache = response_cache;
  }
  std::shared_ptr<cache::VerdictMemo> verdict_memo;
  const size_t verdict_memo_cap = args.GetSize("verdict-memo", 0);
  if (verdict_memo_cap > 0) {
    verdict_memo =
        std::make_shared<cache::VerdictMemo>(verdict_memo_cap, &registry);
    opts.verdict_memo = verdict_memo;
  }

  std::printf("# updb serve — seed=%llu db_objects=%zu requests=%zu "
              "workers=%zu batch=%zu queue=%zu qps=%.3g iterations=%d "
              "shards=%zu churn=%d wal_dir=%s fsync=%s "
              "response_cache=%zu verdict_memo=%zu kernel=%s\n",
              static_cast<unsigned long long>(seed), db.size(),
              trace.size(), opts.num_workers, opts.batch_size,
              opts.max_queue, qps, tcfg.budget.max_iterations,
              sopts.num_shards, churn ? 1 : 0,
              args.Get("wal-dir", "-").c_str(),
              args.Get("fsync", "every_publish").c_str(),
              response_cache_cap, verdict_memo_cap,
              gf::ActiveKernelName());

  store::RecoveryReport recovery_report;
  bool did_recover = false;
  StatusOr<std::shared_ptr<store::VersionedObjectStore>> made =
      MakeStore(args, db, sopts, &recovery_report, &did_recover);
  if (!made.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<store::VersionedObjectStore> object_store =
      std::move(made).value();
  service::QueryService svc(object_store, opts);

  // Admin plane: store-backed readiness + /statusz over this service,
  // /metrics from the unified registry, /requestz from the audit ring.
  // Declared after svc/audit_log so it stops (and its thread joins)
  // before anything it reads is torn down.
  std::unique_ptr<obs::AdminServer> admin;
  if (admin_enabled) {
    obs::AdminServerOptions aopts = service::MakeAdminOptions(
        &svc, object_store.get(), did_recover ? &recovery_report : nullptr);
    aopts.port = static_cast<uint16_t>(args.GetSize("admin-port", 0));
    aopts.registry = &registry;
    aopts.audit_log = audit_log.get();
    aopts.build_info = "updb_cli serve";
    admin = std::make_unique<obs::AdminServer>(std::move(aopts));
    const Status started = admin->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "admin server failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    // Flushed immediately so external probes can pick the port up while
    // the replay is still running.
    std::printf("# admin listening on 127.0.0.1:%u\n", admin->port());
    std::fflush(stdout);
  }

  // --churn: a writer thread applies seed-deterministic mutation batches
  // and publishes new versions while the trace replays.
  std::thread writer;
  if (churn) {
    const size_t churn_batches = args.GetSize("churn-batches", 8);
    const uint64_t churn_seed =
        static_cast<uint64_t>(args.GetSize("churn-seed", seed + 1));
    workload::ChurnConfig ccfg;
    ccfg.mutations_per_batch = args.GetSize("churn-per-batch", 16);
    ccfg.max_extent = args.GetDouble("churn-extent",
                                     args.GetDouble("extent", 0.02));
    ccfg.model = ParseModel(args.Get("model", "uniform"));
    ccfg.samples_per_object = args.GetSize("samples", 64);
    const double interval_ms = args.GetDouble("churn-interval-ms", 20.0);
    writer = std::thread([object_store, churn_batches, churn_seed, ccfg,
                          interval_ms] {
      Rng rng(churn_seed);
      const size_t dim = std::max<size_t>(object_store->dim(), 1);
      for (size_t b = 0; b < churn_batches; ++b) {
        const std::vector<store::Mutation> batch =
            workload::MakeMutationBatch(object_store->LiveIds(), dim, ccfg,
                                        rng);
        const Status status = workload::ApplyMutationBatch(*object_store,
                                                           batch);
        if (!status.ok()) {
          std::fprintf(stderr, "churn apply failed: %s\n",
                       status.ToString().c_str());
        }
        object_store->Publish();
        if (interval_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(interval_ms));
        }
      }
    });
  }

  const service::ReplayResult result =
      service::ReplayTrace(svc, trace, qps);
  if (writer.joinable()) writer.join();
  if (object_store->durable() && !object_store->wal_status().ok()) {
    std::fprintf(stderr, "wal error: %s\n",
                 object_store->wal_status().ToString().c_str());
  }

  size_t by_status[4] = {0, 0, 0, 0};
  uint64_t min_version = ~uint64_t{0}, max_version = 0;
  for (const service::QueryResponse& r : result.responses) {
    ++by_status[static_cast<size_t>(r.status)];
    // Never-executed stubs carry version 0; executed responses (kInvalid
    // included — execution-time invalidation stamps the round's version)
    // name a published version, since the store seeds at version 1.
    if (r.snapshot_version == 0) continue;
    min_version = std::min(min_version, r.snapshot_version);
    max_version = std::max(max_version, r.snapshot_version);
  }
  if (min_version > max_version) min_version = max_version;
  std::printf("# ok=%zu expired=%zu rejected=%zu invalid=%zu "
              "wall_seconds=%.3f\n",
              by_status[0], by_status[1], by_status[2], by_status[3],
              result.wall_seconds);
  std::printf("# versions_served=[%llu, %llu] store_version=%llu "
              "live_objects=%zu mutations=%llu\n",
              static_cast<unsigned long long>(min_version),
              static_cast<unsigned long long>(max_version),
              static_cast<unsigned long long>(object_store->version()),
              object_store->live_size(),
              static_cast<unsigned long long>(
                  object_store->total_mutations()));
  std::printf("# response_digest=%016llx\n",
              static_cast<unsigned long long>(
                  service::ResponseDigest(result.responses)));

  // Cached≡recomputed oracle: replay the trace once more through a fresh
  // service *sharing* the populated caches — tickets restart at 0, so
  // the warm response sequence must digest bit-identically to the first
  // pass, with every executed request served from the cache. Skipped
  // under churn (the store version advanced, so recomputation is the
  // correct behavior) and under load shedding (rejection is
  // load-dependent, not part of the determinism contract).
  int exit_code = 0;
  if (response_cache != nullptr) {
    std::printf("# response_cache hits=%llu misses=%llu evictions=%llu "
                "entries=%zu\n",
                static_cast<unsigned long long>(response_cache->hits()),
                static_cast<unsigned long long>(response_cache->misses()),
                static_cast<unsigned long long>(response_cache->evictions()),
                response_cache->size());
    if (!churn && result.rejected == 0) {
      service::QueryService warm_svc(object_store, opts);
      const service::ReplayResult warm =
          service::ReplayTrace(warm_svc, trace, /*qps=*/0.0);
      const uint64_t first = service::ResponseDigest(result.responses);
      const uint64_t second = service::ResponseDigest(warm.responses);
      size_t warm_hits = 0;
      for (const service::QueryResponse& r : warm.responses) {
        warm_hits += r.stats.cache_hit ? 1 : 0;
      }
      std::printf("# cache_oracle digests=%s warm_hits=%zu/%zu\n",
                  first == second ? "match" : "MISMATCH", warm_hits,
                  warm.responses.size());
      if (first != second) {
        std::fprintf(stderr,
                     "FAIL: cached response payloads diverge from "
                     "recomputation (%016llx vs %016llx)\n",
                     static_cast<unsigned long long>(first),
                     static_cast<unsigned long long>(second));
        exit_code = 2;
      }
    }
  }
  if (verdict_memo != nullptr) {
    std::printf("# verdict_memo hits=%llu misses=%llu inserts=%llu "
                "evictions=%llu slots=%zu\n",
                static_cast<unsigned long long>(verdict_memo->hits()),
                static_cast<unsigned long long>(verdict_memo->misses()),
                static_cast<unsigned long long>(verdict_memo->inserts()),
                static_cast<unsigned long long>(verdict_memo->evictions()),
                verdict_memo->capacity());
  }

  const std::string metrics_json =
      "{\"service\": " + svc.metrics().Snapshot().ToJson() +
      ", \"store\": " + StoreMetricsJson(*object_store) + ", \"wal\": " +
      object_store->wal_stats().ToJson(object_store->wal_status()) +
      ", \"recovery\": " +
      RecoveryMetricsJson(did_recover, recovery_report) + "}";
  const std::string metrics_out = args.Get("metrics-out", "");
  if (metrics_out.empty()) {
    std::printf("%s\n", metrics_json.c_str());
  } else {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", metrics_json.c_str());
    std::fclose(f);
    std::printf("# metrics written to %s\n", metrics_out.c_str());
  }
  if (!WriteObsOutputs(args, tracer, registry)) return 1;

  // Keep the admin plane scrapeable after the replay quiesces (CI curls
  // the endpoints of a finished run before the process exits).
  const double linger_ms = args.GetDouble("admin-linger-ms", 0.0);
  if (admin != nullptr && linger_ms > 0.0) {
    std::printf("# admin lingering for %.0f ms\n", linger_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(linger_ms));
  }
  return exit_code;
}

int Mutate(const Args& args) {
  StatusOr<UncertainDatabase> loaded = LoadDb(args);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string trace_out = args.Get("trace-out", "");
  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* trace =
      trace_out.empty() ? nullptr : &trace_recorder;

  store::StoreOptions sopts;
  sopts.compact_delta_fraction = args.GetDouble("compact-fraction", 0.25);
  sopts.num_shards = std::max<size_t>(args.GetSize("shards", 1), 1);
  sopts.metrics_registry = &registry;
  sopts.trace = trace;
  store::RecoveryReport recovery_report;
  bool did_recover = false;
  StatusOr<std::shared_ptr<store::VersionedObjectStore>> made =
      MakeStore(args, *loaded, sopts, &recovery_report, &did_recover);
  if (!made.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  store::VersionedObjectStore& object_store = **made;

  const uint64_t seed = static_cast<uint64_t>(args.GetSize("seed", 1));
  workload::ChurnConfig ccfg;
  ccfg.mutations_per_batch = args.GetSize("per-batch", 32);
  ccfg.insert_weight = args.GetDouble("insert-w", 0.4);
  ccfg.update_weight = args.GetDouble("update-w", 0.4);
  ccfg.remove_weight = args.GetDouble("remove-w", 0.2);
  ccfg.max_extent = args.GetDouble("extent", 0.01);
  ccfg.model = ParseModel(args.Get("model", "uniform"));
  ccfg.samples_per_object = args.GetSize("samples", 64);
  const size_t batches = args.GetSize("batches", 4);
  const size_t dim = std::max<size_t>(object_store.dim(), 1);

  std::printf("# updb mutate — seed=%llu objects=%zu batches=%zu "
              "per_batch=%zu weights=%.2f/%.2f/%.2f compact_fraction=%.2f "
              "shards=%zu\n",
              static_cast<unsigned long long>(seed),
              object_store.live_size(), batches, ccfg.mutations_per_batch,
              ccfg.insert_weight, ccfg.update_weight, ccfg.remove_weight,
              sopts.compact_delta_fraction, sopts.num_shards);
  std::printf("version,live,delta_entries,compacted,drain_ms,build_ms\n");
  Rng rng(seed);
  for (size_t b = 0; b < batches; ++b) {
    const std::vector<store::Mutation> batch = workload::MakeMutationBatch(
        object_store.LiveIds(), dim, ccfg, rng);
    const Status status = workload::ApplyMutationBatch(object_store, batch);
    if (!status.ok()) {
      std::fprintf(stderr, "apply failed: %s\n", status.ToString().c_str());
      return 1;
    }
    store::PublishStats stats;
    const auto snap = object_store.Publish(&stats);
    std::printf("%llu,%zu,%zu,%d,%.3f,%.3f\n",
                static_cast<unsigned long long>(snap->version()),
                snap->size(), snap->index().delta_entries(),
                snap->index().compacted() ? 1 : 0, stats.drain_ms,
                stats.build_ms);
  }
  if (object_store.durable() && !object_store.wal_status().ok()) {
    std::fprintf(stderr, "wal error: %s\n",
                 object_store.wal_status().ToString().c_str());
    return 1;
  }
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    const std::string metrics_json =
        "{\"store\": " + StoreMetricsJson(object_store) + ", \"wal\": " +
        object_store.wal_stats().ToJson(object_store.wal_status()) +
        ", \"recovery\": " +
        RecoveryMetricsJson(did_recover, recovery_report) + "}";
    std::fprintf(f, "%s\n", metrics_json.c_str());
    std::fclose(f);
    std::printf("# metrics written to %s\n", metrics_out.c_str());
  }
  if (!WriteObsOutputs(args, trace, registry)) return 1;

  // Never default to the input path — a forgotten --out must not clobber
  // the source dataset.
  const std::string out = args.Get("out", "mutated.updb");
  const Status saved =
      io::SaveDatabase(*object_store.latest()->db(), out);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("# wrote %zu objects (version %llu) to %s\n",
              object_store.latest()->size(),
              static_cast<unsigned long long>(object_store.version()),
              out.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: updb_cli "
               "<generate|info|domcount|knn|rknn|serve|mutate|recover> "
               "[--key=value ...]\n(see header of tools/updb_cli.cc; "
               "serve/mutate take --wal-dir/--fsync for durability,\n"
               "recover rebuilds from a WAL directory and prints a JSON "
               "report)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "generate") return Generate(args);
  if (command == "info") return Info(args);
  if (command == "domcount") return DomCount(args);
  if (command == "knn") return ThresholdQuery(args, /*reverse=*/false);
  if (command == "rknn") return ThresholdQuery(args, /*reverse=*/true);
  if (command == "serve") return Serve(args);
  if (command == "mutate") return Mutate(args);
  if (command == "recover") return Recover(args);
  return Usage();
}
